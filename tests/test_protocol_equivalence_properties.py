"""Property-based equivalence & message-accounting harness for all protocols.

This suite upgrades the point assertions of ``test_batch_equivalence.py`` to
randomized, seed-parameterized properties, now that *every* protocol class
(P1–P4 in both domains, plus the centralized baselines) ships a native
``process_batch`` kernel:

* **Batch-vs-item equivalence** — for every (protocol, domain, chunk size ∈
  {1, 7, 4096}, seed) combination, the batched path must reproduce per-item
  ingestion of the same site-grouped order.  Deterministic protocols and the
  seeded randomized ones (whose per-site generators are consumed identically
  by the block draws) are *exactly* message-equivalent; HH P1 aggregates its
  Misra–Gries updates per segment, so its summary sizes — and with them its
  per-flush message units — are only guarantee-level equivalent.
* **Message accounting invariance** — protocols whose communication is
  item-counted (the forwarding baselines) must exchange exactly one unit per
  item no matter how the stream is chunked.  For the adaptive protocols the
  chunk size changes the cross-site interleaving (an equally valid order
  under the paper's adversarial model), so cross-chunk invariance is only
  asserted in the single-site case, where no reordering is possible.
* **RNG reproducibility** — same seed, same chunk size ⇒ bit-identical
  message logs and query answers for the randomized protocols; with one site
  the guarantee extends across chunk sizes.
* **Paper bounds** — the ε-approximation guarantees (heavy hitters within
  ``ε·W``, covariance within ``ε·‖A‖²_F``, Frequent Directions within
  ``‖A‖²_F/ℓ``, P2's one-sided undershoot) hold on every seed, through the
  batched path.
* **Empty batches** — every kernel treats a zero-length batch as a no-op.

Seeds come from ``REPRO_PROPERTY_SEEDS`` (comma-separated ints; CI pins
three) so the properties can be re-rolled without editing the file.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.synthetic_matrix import make_pamap_like
from repro.data.zipfian import ZipfianStreamGenerator
from repro.heavy_hitters import (
    BatchedMisraGriesProtocol,
    ExactForwardingProtocol,
    PrioritySamplingProtocol,
    RandomizedReportingProtocol,
    ThresholdedUpdatesProtocol,
    WithReplacementSamplingProtocol,
)
from repro.matrix_tracking import (
    BatchedFrequentDirectionsProtocol,
    CentralizedFDBaseline,
    CentralizedSVDBaseline,
    DeterministicDirectionProtocol,
    MatrixPrioritySamplingProtocol,
    SingularDirectionUpdateProtocol,
    WithReplacementMatrixSamplingProtocol,
)
from repro.sketch import FrequentDirections
from repro.streaming.items import MatrixRowBatch, WeightedItemBatch
from repro.streaming.partition import RoundRobinPartitioner
from repro.streaming.runner import StreamingEngine
from repro.utils.linalg import spectral_norm

SEEDS = tuple(
    int(seed)
    for seed in os.environ.get("REPRO_PROPERTY_SEEDS", "0,7,2014").split(",")
)
CHUNK_SIZES = (1, 7, 4096)
NUM_SITES = 5
HH_ITEMS = 800
MATRIX_ROWS = 400
EPSILON = 0.1

# Message-accounting strictness of each kernel versus the per-item path:
#   exact  - identical counters including the per-transmission count
#   units  - identical message units; transmissions coalesce (batch forwards)
#   bounded - guarantee-level only (HH P1's aggregated summaries change size)
HH_PROTOCOLS = {
    "P1": ("bounded", lambda m, seed: BatchedMisraGriesProtocol(
        num_sites=m, epsilon=EPSILON)),
    "P2": ("exact", lambda m, seed: ThresholdedUpdatesProtocol(
        num_sites=m, epsilon=EPSILON)),
    # site_space=64 straddles the merge-sweep fast path (no eviction
    # possible) and the exact per-item fallback within one run.
    "P2ss": ("exact", lambda m, seed: ThresholdedUpdatesProtocol(
        num_sites=m, epsilon=EPSILON, site_space=64)),
    "P3": ("exact", lambda m, seed: PrioritySamplingProtocol(
        num_sites=m, epsilon=EPSILON, sample_size=150, seed=seed + 101)),
    "P3wr": ("exact", lambda m, seed: WithReplacementSamplingProtocol(
        num_sites=m, epsilon=EPSILON, num_samplers=40, seed=seed + 101)),
    "P4": ("exact", lambda m, seed: RandomizedReportingProtocol(
        num_sites=m, epsilon=EPSILON, seed=seed + 101)),
    "exact": ("units", lambda m, seed: ExactForwardingProtocol(num_sites=m)),
}

MATRIX_PROTOCOLS = {
    "P1": ("exact", lambda m, d, seed: BatchedFrequentDirectionsProtocol(
        num_sites=m, dimension=d, epsilon=0.2)),
    "P2": ("exact", lambda m, d, seed: DeterministicDirectionProtocol(
        num_sites=m, dimension=d, epsilon=0.2)),
    "P3": ("exact", lambda m, d, seed: MatrixPrioritySamplingProtocol(
        num_sites=m, dimension=d, epsilon=0.2, sample_size=100, seed=seed + 101)),
    "P3wr": ("exact", lambda m, d, seed: WithReplacementMatrixSamplingProtocol(
        num_sites=m, dimension=d, epsilon=0.2, num_samplers=30, seed=seed + 101)),
    "P4": ("exact", lambda m, d, seed: SingularDirectionUpdateProtocol(
        num_sites=m, dimension=d, epsilon=0.2, seed=seed + 101)),
    "FD": ("units", lambda m, d, seed: CentralizedFDBaseline(
        num_sites=m, dimension=d, sketch_size=12)),
    "SVD": ("units", lambda m, d, seed: CentralizedSVDBaseline(
        num_sites=m, dimension=d)),
}

RANDOMIZED = ("P3", "P3wr", "P4")


def hh_stream(seed: int, num_sites: int = NUM_SITES):
    """A Zipfian weighted stream plus its round-robin site assignment."""
    generator = ZipfianStreamGenerator(universe_size=300, skew=2.0, beta=50.0,
                                       seed=seed)
    sample = generator.generate(HH_ITEMS)
    batch = WeightedItemBatch.from_pairs(sample.items)
    sites = RoundRobinPartitioner(num_sites).assign_batch(
        np.arange(len(batch)), batch)
    return sample, batch, sites


def matrix_stream(seed: int, num_sites: int = NUM_SITES):
    """A PAMAP-like row stream plus its round-robin site assignment."""
    dataset = make_pamap_like(num_rows=MATRIX_ROWS, seed=seed)
    rows = np.ascontiguousarray(dataset.rows, dtype=np.float64)
    batch = MatrixRowBatch(values=rows)
    sites = RoundRobinPartitioner(num_sites).assign_batch(
        np.arange(rows.shape[0]), batch)
    return dataset, batch, sites


def grouped_replay(protocol, sites, batch, chunk: int) -> None:
    """Replay a stream through ``observe`` in ``observe_batch``'s order.

    ``observe_batch`` stably groups each chunk by site, so the per-item
    reference consumes the same chunk in the same site-grouped order —
    the interleaving both paths must agree on.
    """
    sites = np.asarray(sites)
    for start in range(0, len(batch), chunk):
        segment_sites = sites[start:start + chunk]
        order = np.argsort(segment_sites, kind="stable")
        for position in order:
            index = start + int(position)
            protocol.observe(int(sites[index]), batch[index])


def feed_batched(protocol, sites, batch, chunk: int) -> None:
    for start in range(0, len(batch), chunk):
        protocol.observe_batch(sites[start:start + chunk],
                               batch[start:start + chunk])


def assert_message_equivalence(batched, reference, strictness: str) -> None:
    if strictness == "exact":
        assert batched.total_messages == reference.total_messages
        assert batched.message_counts() == reference.message_counts()
    elif strictness == "units":
        counts = batched.message_counts()
        expected = reference.message_counts()
        counts.pop("total_transmissions")
        expected.pop("total_transmissions")
        assert counts == expected
    else:  # bounded: flush timing matches, summary sizes may not
        assert batched.total_messages == pytest.approx(
            reference.total_messages, rel=0.05)


class TestHeavyHitterBatchItemEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    @pytest.mark.parametrize("name", sorted(HH_PROTOCOLS))
    def test_batch_matches_grouped_item_order(self, name, chunk, seed):
        strictness, factory = HH_PROTOCOLS[name]
        _, batch, sites = hh_stream(seed)
        reference = factory(NUM_SITES, seed)
        grouped_replay(reference, sites, batch, chunk)
        batched = factory(NUM_SITES, seed)
        feed_batched(batched, sites, batch, chunk)

        assert batched.items_processed == reference.items_processed
        assert batched.observed_weight == pytest.approx(reference.observed_weight)
        assert_message_equivalence(batched, reference, strictness)
        if strictness == "bounded":
            return
        assert batched.estimated_total_weight() == pytest.approx(
            reference.estimated_total_weight())
        reference_estimates = reference.estimates()
        batched_estimates = batched.estimates()
        assert set(batched_estimates) == set(reference_estimates)
        for element, estimate in reference_estimates.items():
            assert batched_estimates[element] == pytest.approx(estimate)
        assert (batched.heavy_hitter_elements(0.06)
                == reference.heavy_hitter_elements(0.06))


class TestMatrixBatchItemEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    @pytest.mark.parametrize("name", sorted(MATRIX_PROTOCOLS))
    def test_batch_matches_grouped_item_order(self, name, chunk, seed):
        strictness, factory = MATRIX_PROTOCOLS[name]
        dataset, batch, sites = matrix_stream(seed)
        reference = factory(NUM_SITES, dataset.dimension, seed)
        grouped_replay(reference, sites, batch, chunk)
        batched = factory(NUM_SITES, dataset.dimension, seed)
        feed_batched(batched, sites, batch, chunk)

        assert batched.items_processed == reference.items_processed
        assert batched.observed_squared_frobenius == pytest.approx(
            reference.observed_squared_frobenius)
        assert_message_equivalence(batched, reference, strictness)
        assert batched.estimated_squared_frobenius() == pytest.approx(
            reference.estimated_squared_frobenius())
        batched_sketch = batched.sketch_matrix()
        reference_sketch = reference.sketch_matrix()
        assert batched_sketch.shape == reference_sketch.shape
        assert np.allclose(batched_sketch, reference_sketch)
        assert np.allclose(batched.covariance(), reference.covariance())


class TestMessageAccountingInvariance:
    """Chunking must never change what communication is *counted*."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_forwarding_protocols_count_one_unit_per_item(self, seed):
        """Item-counted protocols: total units are chunk-size invariant."""
        sample, batch, sites = hh_stream(seed)
        totals = set()
        for chunk in CHUNK_SIZES:
            protocol = ExactForwardingProtocol(num_sites=NUM_SITES)
            feed_batched(protocol, sites, batch, chunk)
            assert protocol.network.log.upstream_messages == len(batch)
            totals.add(protocol.total_messages)
        per_item = ExactForwardingProtocol(num_sites=NUM_SITES)
        for (element, weight), site in zip(sample.items, sites):
            per_item.observe(int(site), (element, weight))
        totals.add(per_item.total_messages)
        assert totals == {len(batch)}

    @pytest.mark.parametrize("seed", SEEDS)
    def test_forwarding_baselines_count_one_unit_per_row(self, seed):
        dataset, batch, sites = matrix_stream(seed)
        for factory in (
            lambda: CentralizedSVDBaseline(NUM_SITES, dataset.dimension),
            lambda: CentralizedFDBaseline(NUM_SITES, dataset.dimension,
                                          sketch_size=12),
        ):
            totals = set()
            for chunk in CHUNK_SIZES:
                protocol = factory()
                feed_batched(protocol, sites, batch, chunk)
                totals.add(protocol.total_messages)
            assert totals == {len(batch)}

    @pytest.mark.parametrize("domain", ["heavy_hitters", "matrix"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_single_site_counts_are_chunk_size_invariant(self, domain, seed):
        """With one site no chunking can reorder the stream, so every exact
        protocol must produce identical message counters for every chunk
        size (multi-site chunking changes the cross-site interleaving, which
        the adversarial-order model deliberately leaves free)."""
        if domain == "heavy_hitters":
            _, batch, _ = hh_stream(seed, num_sites=1)
            protocols = {name: spec for name, spec in HH_PROTOCOLS.items()
                         if spec[0] != "bounded"}
            build = lambda factory: factory(1, seed)
        else:
            dataset, batch, _ = matrix_stream(seed, num_sites=1)
            protocols = MATRIX_PROTOCOLS
            build = lambda factory: factory(1, dataset.dimension, seed)
        sites = np.zeros(len(batch), dtype=np.int64)
        for name, (strictness, factory) in sorted(protocols.items()):
            counters = []
            for chunk in CHUNK_SIZES:
                protocol = build(factory)
                feed_batched(protocol, sites, batch, chunk)
                counters.append(protocol.message_counts())
            if strictness == "units":
                for counts in counters:
                    counts.pop("total_transmissions")
            assert counters[0] == counters[1] == counters[2], name


class TestRngReproducibility:
    """Same seed ⇒ same randomness ⇒ identical behaviour."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", RANDOMIZED)
    def test_hh_same_seed_same_chunk_identical_logs(self, name, seed):
        _, batch, sites = hh_stream(seed)
        runs = []
        for _ in range(2):
            _, factory = HH_PROTOCOLS[name]
            protocol = factory(NUM_SITES, seed)
            protocol.network.log.keep_records = True
            feed_batched(protocol, sites, batch, 7)
            runs.append(protocol)
        first, second = runs
        assert first.network.log.records == second.network.log.records
        assert first.estimates() == second.estimates()
        assert first.estimated_total_weight() == second.estimated_total_weight()

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", RANDOMIZED)
    def test_matrix_same_seed_same_chunk_identical_logs(self, name, seed):
        dataset, batch, sites = matrix_stream(seed)
        runs = []
        for _ in range(2):
            _, factory = MATRIX_PROTOCOLS[name]
            protocol = factory(NUM_SITES, dataset.dimension, seed)
            protocol.network.log.keep_records = True
            feed_batched(protocol, sites, batch, 7)
            runs.append(protocol)
        first, second = runs
        assert first.network.log.records == second.network.log.records
        assert np.array_equal(first.sketch_matrix(), second.sketch_matrix())
        assert (first.estimated_squared_frobenius()
                == second.estimated_squared_frobenius())

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", RANDOMIZED)
    def test_hh_single_site_chunk_size_free(self, name, seed):
        """One site: the same seed gives identical answers for every chunk
        size (and for the per-item engine path), because the per-site RNG
        stream is consumed in stream order regardless of chunking."""
        _, batch, _ = hh_stream(seed, num_sites=1)
        sites = np.zeros(len(batch), dtype=np.int64)
        _, factory = HH_PROTOCOLS[name]
        reference_counts = None
        reference_estimates = None
        for chunk in CHUNK_SIZES:
            protocol = factory(1, seed)
            feed_batched(protocol, sites, batch, chunk)
            counts = protocol.message_counts()
            estimates = protocol.estimates()
            if reference_counts is None:
                reference_counts = counts
                reference_estimates = estimates
                continue
            assert counts == reference_counts, chunk
            assert set(estimates) == set(reference_estimates), chunk
            # Batch boundaries change float summation order, nothing more.
            for element, estimate in reference_estimates.items():
                assert estimates[element] == pytest.approx(estimate, rel=1e-9)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_engine_chunked_run_matches_observe_batch(self, seed):
        """The StreamingEngine's chunked dispatch is just observe_batch."""
        _, batch, sites = hh_stream(seed)
        _, factory = HH_PROTOCOLS["P3"]
        direct = factory(NUM_SITES, seed)
        feed_batched(direct, sites, batch, 7)
        engined = factory(NUM_SITES, seed)
        sited = WeightedItemBatch(elements=batch.elements,
                                  weights=batch.weights, sites=sites)
        StreamingEngine(chunk_size=7).run(engined, sited)
        assert engined.total_messages == direct.total_messages
        assert engined.estimates() == direct.estimates()


class TestPaperBounds:
    """The paper's guarantees, asserted through the batched path."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", ["P1", "P2", "P3", "P4"])
    def test_heavy_hitter_estimates_within_epsilon(self, name, seed):
        sample, batch, sites = hh_stream(seed)
        if name == "P3":
            # The equivalence registry keeps P3's sample small for speed; the
            # accuracy theorem needs the paper's s = Θ((1/ε²)·log(1/ε)).
            protocol = PrioritySamplingProtocol(
                num_sites=NUM_SITES, epsilon=EPSILON, sample_size=400,
                seed=seed + 101)
        else:
            _, factory = HH_PROTOCOLS[name]
            protocol = factory(NUM_SITES, seed)
        feed_batched(protocol, sites, batch, 4096)
        budget = EPSILON * sample.total_weight + 1e-9
        for element, weight in sample.element_weights.items():
            assert abs(protocol.estimate(element) - weight) <= budget, element

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", ["P1", "P3"])
    def test_matrix_covariance_within_epsilon(self, name, seed):
        dataset, batch, sites = matrix_stream(seed)
        _, factory = MATRIX_PROTOCOLS[name]
        protocol = factory(NUM_SITES, dataset.dimension, seed)
        feed_batched(protocol, sites, batch, 4096)
        assert protocol.approximation_error() <= 0.2 + 1e-9

    @pytest.mark.parametrize("seed", SEEDS)
    def test_matrix_p2_error_is_one_sided(self, seed):
        """P2 only ever *undershoots*: 0 ≤ ‖Ax‖² − ‖Bx‖² ≤ ε·‖A‖²_F."""
        dataset, batch, sites = matrix_stream(seed)
        _, factory = MATRIX_PROTOCOLS["P2"]
        protocol = factory(NUM_SITES, dataset.dimension, seed)
        feed_batched(protocol, sites, batch, 4096)
        difference = protocol.observed_covariance() - protocol.covariance()
        norm = protocol.observed_squared_frobenius
        assert spectral_norm(difference) <= 0.2 * norm + 1e-6
        eigenvalues = np.linalg.eigvalsh(difference)
        assert eigenvalues.min() >= -1e-6 * max(norm, 1.0)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_frequent_directions_covariance_bound(self, seed):
        """FD's deterministic bound: ‖AᵀA − BᵀB‖₂ ≤ ‖A‖²_F / ℓ."""
        dataset, _, _ = matrix_stream(seed)
        rows = dataset.rows
        sketch_size = 16
        sketch = FrequentDirections(dimension=dataset.dimension,
                                    sketch_size=sketch_size)
        sketch.append_batch(rows)
        difference = rows.T @ rows - sketch.covariance()
        frobenius = float(np.einsum("ij,ij->", rows, rows))
        assert spectral_norm(difference) <= frobenius / sketch_size + 1e-6


class TestEmptyBatches:
    """A zero-length batch must be a universal no-op for every kernel."""

    @pytest.mark.parametrize("name", sorted(HH_PROTOCOLS))
    def test_heavy_hitter_kernels(self, name):
        _, factory = HH_PROTOCOLS[name]
        protocol = factory(NUM_SITES, 0)
        protocol.process_batch(0, np.empty(0, dtype=object), None)
        protocol.process_batch(1, [], np.empty(0))
        protocol.observe_batch([], WeightedItemBatch.from_pairs([]))
        assert protocol.items_processed == 0
        assert protocol.total_messages == 0
        assert protocol.estimates() == {}

    @pytest.mark.parametrize("name", sorted(MATRIX_PROTOCOLS))
    def test_matrix_kernels(self, name):
        _, factory = MATRIX_PROTOCOLS[name]
        protocol = factory(NUM_SITES, 6, 0)
        protocol.process_batch(0, np.empty((0, 6)))
        protocol.observe_batch([], MatrixRowBatch(values=np.empty((0, 6))))
        assert protocol.items_processed == 0
        assert protocol.total_messages == 0
        assert protocol.sketch_matrix().shape[0] == 0
