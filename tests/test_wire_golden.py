"""Golden-fixture forward-loadability: committed v1 wire checkpoints load.

``tests/fixtures/`` carries small v1 checkpoints (one heavy-hitter spec, one
matrix spec, both saved *mid-stream*) plus the exact answers recorded when
they were written.  Every build must keep loading them and answering
**exactly** the recorded values — so an accidental change to the wire tag
set, the frame layout or the checkpoint payload breaks CI instead of
silently orphaning every checkpoint in the field.  Legitimate format
changes bump ``CHECKPOINT_VERSION``/``WIRE_VERSION`` and regenerate the
fixtures via ``tests/fixtures/make_golden.py`` (committing new files *next
to* the old ones when the old version remains loadable).

The recorded answers are BLAS-free arithmetic (counter sums, sampling
draws, Frobenius accumulation), so exact float equality is portable.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.api import FrobeniusSquared, HeavyHitters, TotalWeight
from repro.wire import is_wire_data

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(FIXTURES / "golden_answers.json") as handle:
        return json.load(handle)


def test_fixture_files_are_wire_frames_not_pickles(golden):
    for record in (golden["hh"], golden["matrix"]):
        data = (FIXTURES / record["file"]).read_bytes()
        assert is_wire_data(data)
        assert not data.startswith(b"\x80")


def test_hh_golden_checkpoint_loads_and_answers_exactly(golden):
    record = golden["hh"]
    tracker = repro.Tracker.load(FIXTURES / record["file"])
    assert tracker.spec == record["spec"]
    assert tracker.items_processed == record["items_processed"]
    assert tracker.protocol.message_counts() == record["message_counts"]

    hitters = tracker.query(HeavyHitters(phi=0.05))
    assert [
        {"element": int(hitter.element),
         "estimated_weight": hitter.estimated_weight}
        for hitter in hitters.hitters
    ] == record["heavy_hitters"]
    assert hitters.error_bound == record["hh_error_bound"]
    assert tracker.query(TotalWeight()).estimate \
        == record["total_weight_estimate"]


def test_hh_golden_checkpoint_resumes_ingestion(golden):
    """The fixture was saved mid-stream: the restored session must keep
    ingesting (pending per-site deltas intact), not just answer queries."""
    record = golden["hh"]
    tracker = repro.Tracker.load(FIXTURES / record["file"])
    before = tracker.query(TotalWeight()).estimate
    tracker.run([(0, 5.0), (1, 3.0)])
    assert tracker.items_processed == record["items_processed"] + 2
    assert tracker.query(TotalWeight()).estimate >= before


def test_matrix_golden_checkpoint_loads_and_answers_exactly(golden):
    record = golden["matrix"]
    tracker = repro.Tracker.load(FIXTURES / record["file"])
    assert tracker.spec == record["spec"]
    assert tracker.items_processed == record["items_processed"]
    assert tracker.protocol.message_counts() == record["message_counts"]

    frobenius = tracker.query(FrobeniusSquared())
    assert frobenius.estimate == record["frobenius_estimate"]
    assert frobenius.error_bound == record["frobenius_error_bound"]


def test_versions_recorded_match_this_build(golden):
    from repro.api.state import CHECKPOINT_VERSION
    from repro.wire import WIRE_BASE_VERSION, WIRE_VERSION

    # When either version bumps, regenerate fixtures for the new version
    # and keep this file asserting the OLD files still load (or document
    # the migration); failing here forces that decision to be explicit.
    assert golden["checkpoint_version"] == CHECKPOINT_VERSION
    # The fixtures are written uncompressed on purpose, so they stay at the
    # base wire version: their job is to pin forward-loadability of plain
    # version-1 frames under every newer build (which may itself write
    # compressed version-2 frames by default).
    assert WIRE_BASE_VERSION <= golden["wire_version"] <= WIRE_VERSION
