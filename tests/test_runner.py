"""Unit tests for the protocol runner and the DistributedProtocol base class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.heavy_hitters.exact import ExactForwardingProtocol
from repro.matrix_tracking.baselines import CentralizedSVDBaseline
from repro.streaming.items import MatrixRow, WeightedItem
from repro.streaming.partition import RoundRobinPartitioner
from repro.streaming.runner import run_many, run_protocol


class TestRunProtocolWithWeightedItems:
    def test_feeds_all_items(self, zipf_sample):
        protocol = ExactForwardingProtocol(num_sites=5)
        result = run_protocol(protocol, [WeightedItem(element=e, weight=w)
                                         for e, w in zipf_sample.items[:500]])
        assert result.items_processed == 500
        assert result.total_messages >= 500
        assert protocol.estimated_total_weight() == pytest.approx(
            sum(w for _, w in zipf_sample.items[:500])
        )

    def test_tuples_accepted(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        run_protocol(protocol, [("a", 1.0), ("b", 2.0), ("a", 3.0)])
        assert protocol.estimate("a") == pytest.approx(4.0)

    def test_items_with_site_attribute_routed_directly(self):
        protocol = ExactForwardingProtocol(num_sites=3, keep_message_records=True)
        items = [WeightedItem(element="x", weight=1.0, site=2) for _ in range(4)]
        run_protocol(protocol, items)
        sites = {record.site for record in protocol.network.log.records
                 if record.site is not None}
        assert sites == {2}

    def test_query_schedule(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        result = run_protocol(
            protocol,
            [("a", 1.0)] * 10,
            query_at=[3, 7],
            query=lambda p: p.estimate("a"),
        )
        counts = [obs.items_processed for obs in result.observations]
        assert counts == [3, 7, 10]
        assert result.observations[0].result == pytest.approx(3.0)
        assert result.final_observation.result == pytest.approx(10.0)

    def test_no_final_query_when_disabled(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        result = run_protocol(
            protocol, [("a", 1.0)] * 5, query_at=[2],
            query=lambda p: p.estimate("a"), query_at_end=False,
        )
        assert [obs.items_processed for obs in result.observations] == [2]

    def test_partitioner_mismatch_rejected(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        with pytest.raises(ValueError):
            run_protocol(protocol, [("a", 1.0)],
                         partitioner=RoundRobinPartitioner(num_sites=3))

    def test_final_observation_none_without_query(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        result = run_protocol(protocol, [("a", 1.0)])
        assert result.final_observation is None
        assert result.observations == []


class TestRunProtocolWithRows:
    def test_matrix_rows_accepted(self, rng):
        rows = rng.standard_normal((50, 4))
        protocol = CentralizedSVDBaseline(num_sites=4, dimension=4)
        result = run_protocol(protocol, (MatrixRow(values=row) for row in rows))
        assert result.items_processed == 50
        assert protocol.observed_squared_frobenius == pytest.approx(float(np.sum(rows ** 2)))

    def test_message_counts_in_result(self, rng):
        rows = rng.standard_normal((20, 3))
        protocol = CentralizedSVDBaseline(num_sites=2, dimension=3)
        result = run_protocol(protocol, (MatrixRow(values=row) for row in rows))
        assert result.message_counts["total_messages"] == result.total_messages
        assert result.total_messages == 20


class TestRunMany:
    def test_identical_streams_per_protocol(self):
        protocols = {
            "first": ExactForwardingProtocol(num_sites=2),
            "second": ExactForwardingProtocol(num_sites=2),
        }

        def stream_factory():
            return [("a", 1.0), ("b", 2.0), ("a", 1.5)]

        results = run_many(protocols, stream_factory)
        assert set(results) == {"first", "second"}
        assert (results["first"].protocol.estimate("a")
                == results["second"].protocol.estimate("a"))


class TestProtocolBase:
    def test_repr_and_counters(self):
        protocol = ExactForwardingProtocol(num_sites=3)
        protocol.process(0, "a", 1.0)
        text = repr(protocol)
        assert "num_sites=3" in text
        assert protocol.items_processed == 1

    def test_message_counts_dict(self):
        protocol = ExactForwardingProtocol(num_sites=3)
        protocol.process(1, "a", 2.0)
        counts = protocol.message_counts()
        assert counts["total_messages"] == protocol.total_messages
