"""Unit tests for the streaming engine and the DistributedProtocol base class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.heavy_hitters.exact import ExactForwardingProtocol
from repro.matrix_tracking.baselines import CentralizedSVDBaseline
from repro.streaming.items import MatrixRow, MatrixRowBatch, WeightedItem, WeightedItemBatch
from repro.streaming.partition import RoundRobinPartitioner
from repro.streaming.runner import StreamingEngine, run_many, run_protocol


class TestRunProtocolWithWeightedItems:
    def test_feeds_all_items(self, zipf_sample):
        protocol = ExactForwardingProtocol(num_sites=5)
        result = run_protocol(protocol, [WeightedItem(element=e, weight=w)
                                         for e, w in zipf_sample.items[:500]])
        assert result.items_processed == 500
        assert result.total_messages >= 500
        assert protocol.estimated_total_weight() == pytest.approx(
            sum(w for _, w in zipf_sample.items[:500])
        )

    def test_tuples_accepted(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        run_protocol(protocol, [("a", 1.0), ("b", 2.0), ("a", 3.0)])
        assert protocol.estimate("a") == pytest.approx(4.0)

    def test_items_with_site_attribute_routed_directly(self):
        protocol = ExactForwardingProtocol(num_sites=3, keep_message_records=True)
        items = [WeightedItem(element="x", weight=1.0, site=2) for _ in range(4)]
        run_protocol(protocol, items)
        sites = {record.site for record in protocol.network.log.records
                 if record.site is not None}
        assert sites == {2}

    def test_query_schedule(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        result = run_protocol(
            protocol,
            [("a", 1.0)] * 10,
            query_at=[3, 7],
            query=lambda p: p.estimate("a"),
        )
        counts = [obs.items_processed for obs in result.observations]
        assert counts == [3, 7, 10]
        assert result.observations[0].result == pytest.approx(3.0)
        assert result.final_observation.result == pytest.approx(10.0)

    def test_no_final_query_when_disabled(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        result = run_protocol(
            protocol, [("a", 1.0)] * 5, query_at=[2],
            query=lambda p: p.estimate("a"), query_at_end=False,
        )
        assert [obs.items_processed for obs in result.observations] == [2]

    def test_partitioner_mismatch_rejected(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        with pytest.raises(ValueError):
            run_protocol(protocol, [("a", 1.0)],
                         partitioner=RoundRobinPartitioner(num_sites=3))

    def test_final_observation_none_without_query(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        result = run_protocol(protocol, [("a", 1.0)])
        assert result.final_observation is None
        assert result.observations == []


class TestRunProtocolWithRows:
    def test_matrix_rows_accepted(self, rng):
        rows = rng.standard_normal((50, 4))
        protocol = CentralizedSVDBaseline(num_sites=4, dimension=4)
        result = run_protocol(protocol, (MatrixRow(values=row) for row in rows))
        assert result.items_processed == 50
        assert protocol.observed_squared_frobenius == pytest.approx(float(np.sum(rows ** 2)))

    def test_message_counts_in_result(self, rng):
        rows = rng.standard_normal((20, 3))
        protocol = CentralizedSVDBaseline(num_sites=2, dimension=3)
        result = run_protocol(protocol, (MatrixRow(values=row) for row in rows))
        assert result.message_counts["total_messages"] == result.total_messages
        assert result.total_messages == 20


class TestRunMany:
    def test_identical_streams_per_protocol(self):
        protocols = {
            "first": ExactForwardingProtocol(num_sites=2),
            "second": ExactForwardingProtocol(num_sites=2),
        }

        def stream_factory():
            return [("a", 1.0), ("b", 2.0), ("a", 1.5)]

        results = run_many(protocols, stream_factory)
        assert set(results) == {"first", "second"}
        assert (results["first"].protocol.estimate("a")
                == results["second"].protocol.estimate("a"))


class TestProtocolBase:
    def test_repr_and_counters(self):
        protocol = ExactForwardingProtocol(num_sites=3)
        protocol.process(0, "a", 1.0)
        text = repr(protocol)
        assert "num_sites=3" in text
        assert protocol.items_processed == 1

    def test_message_counts_dict(self):
        protocol = ExactForwardingProtocol(num_sites=3)
        protocol.process(1, "a", 2.0)
        counts = protocol.message_counts()
        assert counts["total_messages"] == protocol.total_messages


class TestStreamingEngineBatched:
    def test_columnar_batch_matches_per_item_results(self, zipf_sample):
        items = zipf_sample.items[:800]
        per_item = ExactForwardingProtocol(num_sites=4)
        run_protocol(per_item, items)
        batched = ExactForwardingProtocol(num_sites=4)
        StreamingEngine(chunk_size=128).run(
            batched, WeightedItemBatch.from_pairs(items))
        assert batched.items_processed == per_item.items_processed
        assert batched.total_messages == per_item.total_messages
        for element in set(element for element, _ in items):
            assert batched.estimate(element) == pytest.approx(
                per_item.estimate(element))

    def test_query_schedule_respected_across_chunk_boundaries(self):
        # Chunks must split at scheduled counts: every query sees the
        # protocol after exactly the scheduled number of items.
        protocol = ExactForwardingProtocol(num_sites=2)
        batch = WeightedItemBatch.from_pairs([("a", 1.0)] * 100)
        result = StreamingEngine(chunk_size=32).run(
            protocol, batch, query_at=[5, 31, 32, 33, 90],
            query=lambda p: p.estimate("a"))
        counts = [obs.items_processed for obs in result.observations]
        assert counts == [5, 31, 32, 33, 90, 100]
        for observation in result.observations:
            assert observation.result == pytest.approx(
                float(observation.items_processed))

    def test_generator_stream_is_chunked(self):
        protocol = ExactForwardingProtocol(num_sites=3)
        stream = (("x", 1.0) for _ in range(257))
        result = StreamingEngine(chunk_size=64).run(protocol, stream)
        assert result.items_processed == 257
        assert protocol.estimate("x") == pytest.approx(257.0)

    def test_items_with_site_attribute_routed_directly_in_batched_mode(self):
        protocol = ExactForwardingProtocol(num_sites=3, keep_message_records=True)
        items = [WeightedItem(element="x", weight=1.0, site=2) for _ in range(10)]
        StreamingEngine(chunk_size=4).run(protocol, items)
        sites = {record.site for record in protocol.network.log.records
                 if record.site is not None}
        assert sites == {2}

    def test_columnar_batch_sites_override_partitioner(self):
        protocol = ExactForwardingProtocol(num_sites=3, keep_message_records=True)
        batch = WeightedItemBatch.from_pairs([("x", 1.0)] * 6,
                                             sites=[1, 1, 1, 1, 1, 1])
        StreamingEngine(chunk_size=2).run(protocol, batch)
        sites = {record.site for record in protocol.network.log.records
                 if record.site is not None}
        assert sites == {1}

    def test_matrix_row_batch_stream(self, rng):
        rows = rng.standard_normal((90, 5))
        protocol = CentralizedSVDBaseline(num_sites=3, dimension=5)
        result = StreamingEngine(chunk_size=32).run(
            protocol, MatrixRowBatch(values=rows))
        assert result.items_processed == 90
        assert protocol.observed_squared_frobenius == pytest.approx(
            float(np.sum(rows ** 2)))

    def test_raw_2d_array_stream(self, rng):
        rows = rng.standard_normal((50, 4))
        protocol = CentralizedSVDBaseline(num_sites=2, dimension=4)
        result = StreamingEngine(chunk_size=16).run(protocol, rows)
        assert result.items_processed == 50
        assert result.total_messages == 50

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            StreamingEngine(chunk_size=0)
        with pytest.raises(ValueError):
            StreamingEngine(chunk_size=-5)


class TestChunkBoundaryEdgeCases:
    """Degenerate chunkings must behave exactly like their references."""

    def test_chunk_size_one_matches_per_item_dispatch(self, zipf_sample):
        # chunk_size=1 performs no site grouping at all, so even the
        # adaptive protocols see pure arrival order: message counts and
        # estimates must match the per-item engine exactly.
        from repro.heavy_hitters.p2_threshold import ThresholdedUpdatesProtocol

        items = zipf_sample.items[:400]
        per_item = ThresholdedUpdatesProtocol(num_sites=3, epsilon=0.1)
        run_protocol(per_item, items)
        chunked = ThresholdedUpdatesProtocol(num_sites=3, epsilon=0.1)
        StreamingEngine(chunk_size=1).run(
            chunked, WeightedItemBatch.from_pairs(items))
        assert chunked.items_processed == per_item.items_processed
        assert chunked.total_messages == per_item.total_messages
        assert chunked.estimated_total_weight() == pytest.approx(
            per_item.estimated_total_weight())
        for element, estimate in per_item.estimates().items():
            assert chunked.estimate(element) == pytest.approx(estimate)

    def test_chunk_larger_than_stream_is_one_batch(self, zipf_sample):
        items = zipf_sample.items[:50]
        protocol = ExactForwardingProtocol(num_sites=2)
        result = StreamingEngine(chunk_size=4096).run(
            protocol, WeightedItemBatch.from_pairs(items))
        assert result.items_processed == 50
        assert protocol.total_messages == 50
        # The whole stream fits in one chunk: one transmission per site.
        assert protocol.network.log.total_transmissions == 2

    def test_query_exactly_on_chunk_boundary(self):
        # A query scheduled precisely where a chunk already ends must fire
        # once, at exactly that count, and not resplit anything.
        protocol = ExactForwardingProtocol(num_sites=2)
        batch = WeightedItemBatch.from_pairs([("a", 1.0)] * 21)
        result = StreamingEngine(chunk_size=7).run(
            protocol, batch, query_at=[7, 14, 21],
            query=lambda p: p.estimate("a"))
        counts = [obs.items_processed for obs in result.observations]
        assert counts == [7, 14, 21]  # no duplicate end-of-stream query
        for observation in result.observations:
            assert observation.result == pytest.approx(
                float(observation.items_processed))

    def test_query_on_final_item_not_duplicated_for_generators(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        stream = (("a", 1.0) for _ in range(14))
        result = StreamingEngine(chunk_size=7).run(
            protocol, stream, query_at=[14], query=lambda p: p.estimate("a"))
        assert [obs.items_processed for obs in result.observations] == [14]

    def test_empty_stream_is_noop(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        result = StreamingEngine(chunk_size=7).run(
            protocol, WeightedItemBatch.from_pairs([]))
        assert result.items_processed == 0
        assert protocol.total_messages == 0


class TestRunBookkeeping:
    """The engine's run-local count is the single source of truth (issue fix)."""

    def test_pre_fed_protocol_gets_no_duplicate_final_query(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        # Protocol has seen items before the run: its lifetime counter is
        # ahead of the run's counter.
        protocol.process(0, "warmup", 1.0)
        protocol.process(1, "warmup", 1.0)
        result = run_protocol(protocol, [("a", 1.0)] * 10, query_at=[10],
                              query=lambda p: p.estimate("a"))
        # One query at item 10 of *this run*; no spurious extra observation
        # at the lifetime count of 12.
        counts = [obs.items_processed for obs in result.observations]
        assert counts == [10]
        assert result.items_processed == 10
        assert protocol.items_processed == 12

    def test_pre_fed_protocol_gets_exactly_one_end_query(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        protocol.process(0, "warmup", 1.0)
        result = run_protocol(protocol, [("a", 1.0)] * 5,
                              query=lambda p: p.estimate("a"))
        counts = [obs.items_processed for obs in result.observations]
        assert counts == [5]

    def test_batched_and_per_item_agree_on_counts(self, zipf_sample):
        items = zipf_sample.items[:300]
        for chunk_size in (None, 64):
            protocol = ExactForwardingProtocol(num_sites=3)
            protocol.process(0, "warmup", 1.0)
            result = run_protocol(protocol, items, query_at=[100, 250],
                                  query=lambda p: p.items_processed,
                                  chunk_size=chunk_size)
            assert [obs.items_processed for obs in result.observations] == \
                [100, 250, 300]
            assert result.items_processed == 300
