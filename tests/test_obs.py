"""Observability layer: metrics kernel, JSON logs, traces, /v1/metrics.

The kernel tests pin the metric-family semantics (label-aware counters,
gauges, fixed-bucket histograms, snapshot/merge/render round trips, the
zero-cost-when-disabled contract).  The acceptance test at the bottom is
the PR's end-to-end property: a 2-shard socket cluster served over the
HTTP gateway, with a mid-stream worker kill, exposes one merged
Prometheus document containing gateway route histograms, tracker series,
and nonzero reconnect/replay counters — while answers stay correct.

The process-global ``REGISTRY`` accumulates across the whole test run,
so cross-cutting assertions check presence and lower bounds, never exact
totals.
"""

from __future__ import annotations

import io
import json
import logging
import threading
from time import perf_counter

import pytest

import repro
from repro.cluster import ShardedTracker, WorkerServer
from repro.cluster.worker_protocol import decode_command, encode_command
from repro.gateway import Gateway, GatewayClient
from repro.obs.logging import (
    JsonLogFormatter,
    configure_json_logging,
    current_trace_id,
    get_logger,
    new_trace_id,
    trace_context,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
    worker_identity,
)


# --------------------------------------------------------------- kernel
class TestMetricsKernel:
    def test_counter_labels_and_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "events", labels=("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.5
        assert counter.value(kind="b") == 1.0
        assert counter.value(kind="never") == 0.0

    def test_wrong_label_set_raises(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", labels=("kind",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(flavor="a")
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(kind="a", extra="b")

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        gauge.add(1.0)
        gauge.add(1.0)
        gauge.add(-1.0)
        assert gauge.value() == 1.0
        gauge.set(7.0)
        assert gauge.value() == 7.0

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds",
                                       buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        series = histogram._series[()]
        assert series.counts == [1, 2, 1, 1]  # final slot is +Inf
        assert series.count == 5
        assert series.sum == pytest.approx(5.605)

    def test_histogram_rejects_unsorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("bad", buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("dup", buckets=(0.5, 0.5))

    def test_get_or_create_shares_and_validates(self):
        registry = MetricsRegistry()
        first = registry.counter("shared_total", labels=("kind",))
        again = registry.counter("shared_total", labels=("kind",))
        assert first is again
        with pytest.raises(ValueError, match="different kind or label"):
            registry.gauge("shared_total", labels=("kind",))
        with pytest.raises(ValueError, match="different kind or label"):
            registry.counter("shared_total", labels=("other",))

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("events_total")
        histogram = registry.histogram("latency_seconds")
        counter.inc()
        histogram.observe(0.5)
        assert counter.value() == 0.0
        assert registry.snapshot()["metrics"] == []
        registry.enable()
        counter.inc()
        assert counter.value() == 1.0

    def test_reset_clears_series_keeps_families(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        counter.inc()
        registry.reset()
        assert counter.value() == 0.0
        assert registry.counter("events_total") is counter

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "as", labels=("kind",)).inc(kind="x")
        registry.counter("quiet_total")  # empty families are omitted
        snap = registry.snapshot()
        assert snap["worker"] == worker_identity()
        assert snap["metrics"] == [{
            "name": "a_total", "kind": "counter", "help": "as",
            "labels": ["kind"], "series": [[["x"], 1.0]],
        }]


class TestMergeAndRender:
    @staticmethod
    def _snapshot(worker, count):
        registry = MetricsRegistry()
        registry.counter("events_total", labels=("kind",)).inc(count, kind="a")
        registry.histogram("latency_seconds",
                           buckets=(0.1, 1.0)).observe(0.05)
        snap = registry.snapshot()
        snap["worker"] = worker
        return snap

    def test_merge_sums_distinct_workers(self):
        merged = merge_snapshots([self._snapshot("host:1", 2),
                                  self._snapshot("host:2", 3)])
        by_name = {family["name"]: family for family in merged}
        assert by_name["events_total"]["series"] == [[["a"], 5.0]]
        histogram = by_name["latency_seconds"]["series"][0][1]
        assert histogram["buckets"] == [2, 0, 0]
        assert histogram["count"] == 2

    def test_merge_dedupes_same_worker_identity(self):
        snap = self._snapshot("host:1", 2)
        merged = merge_snapshots([snap, snap, self._snapshot("host:1", 9)])
        by_name = {family["name"]: family for family in merged}
        assert by_name["events_total"]["series"] == [[["a"], 2.0]]

    def test_merge_skips_none_and_empty(self):
        assert merge_snapshots([None, {}, self._snapshot("h:1", 1)])

    def test_render_prometheus_text(self):
        merged = merge_snapshots([self._snapshot("host:1", 2)])
        text = render_prometheus(merged)
        assert "# TYPE events_total counter" in text
        assert 'events_total{kind="a"} 2' in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_sum 0.05" in text
        assert "latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_render_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", labels=("route",)).inc(
            route='a"b\\c\nd')
        text = render_prometheus(merge_snapshots([registry.snapshot()]))
        assert 'route="a\\"b\\\\c\\nd"' in text


# ------------------------------------------------------------- logging
@pytest.fixture()
def repro_logger_state():
    """Snapshot and restore the ``repro`` logger across a test."""
    root = logging.getLogger("repro")
    saved = (root.handlers[:], root.level, root.propagate)
    yield root
    root.handlers[:], root.level, root.propagate = saved


class TestJsonLogging:
    def test_one_json_object_per_line_with_extras(self, repro_logger_state):
        stream = io.StringIO()
        configure_json_logging("debug", stream=stream)
        logger = get_logger("gateway")
        logger.info("request", extra={"route": "/v1/push", "status": 200})
        logger.debug("frame", extra={"op": "call"})
        lines = [json.loads(line)
                 for line in stream.getvalue().strip().splitlines()]
        assert lines[0]["message"] == "request"
        assert lines[0]["level"] == "info"
        assert lines[0]["logger"] == "repro.gateway"
        assert lines[0]["route"] == "/v1/push"
        assert lines[0]["status"] == 200
        assert lines[1]["level"] == "debug"
        assert lines[1]["op"] == "call"

    def test_trace_id_attaches_from_context(self, repro_logger_state):
        stream = io.StringIO()
        configure_json_logging("info", stream=stream)
        logger = get_logger("cluster")
        with trace_context("feedc0de00000001"):
            logger.info("inside")
        logger.info("outside")
        first, second = [json.loads(line)
                         for line in stream.getvalue().strip().splitlines()]
        assert first["trace_id"] == "feedc0de00000001"
        assert "trace_id" not in second

    def test_formatter_renders_exceptions(self):
        formatter = JsonLogFormatter()
        import sys

        try:
            raise RuntimeError("boom")
        except RuntimeError:
            record = logging.LogRecord("repro.t", logging.ERROR, __file__, 1,
                                       "failed", (), exc_info=sys.exc_info())
        doc = json.loads(formatter.format(record))
        assert doc["message"] == "failed"
        assert "RuntimeError: boom" in doc["exc"]

    def test_new_trace_id_shape(self):
        first, second = new_trace_id(), new_trace_id()
        assert len(first) == 16 and int(first, 16) >= 0
        assert first != second


# --------------------------------------------- trace-on-the-wire frames
class TestTraceOnWireFrames:
    def test_untraced_frames_carry_no_trace_field(self):
        frame = encode_command("stop")
        assert b"trace" not in frame

    def test_trace_field_rebinds_decoder_context(self):
        traced = encode_command("stop", trace="abcdef0123456789")
        plain = encode_command("stop")
        with trace_context(None):
            decode_command(traced)
            assert current_trace_id() == "abcdef0123456789"
            # The next untraced frame clears it — no stale correlation.
            decode_command(plain)
            assert current_trace_id() is None


# ----------------------------------------------------- end-to-end sweep
def _parse_counter_total(text: str, name: str) -> float:
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name + "{") or line == name or \
                line.startswith(name + " "):
            total += float(line.rsplit(" ", 1)[1])
    return total


class TestClusterMetricsSurface:
    def test_socket_cluster_gateway_metrics_end_to_end(self):
        """Concurrent pushes + queries over a 2-shard socket cluster, a
        mid-stream worker kill, then one merged /v1/metrics document."""
        with WorkerServer() as server:
            cluster = ShardedTracker.create(
                "hh/P2", shards=2, backend="socket",
                backend_options={"addresses": [server.address],
                                 "reconnect_backoff": 0.05},
                num_sites=5, epsilon=0.1, chunk_size=50)
            try:
                with Gateway(cluster) as gateway:
                    def push_some(offset):
                        with GatewayClient(gateway.url) as client:
                            for index in range(10):
                                client.push(items=[[offset + index, 1.0]])

                    threads = [threading.Thread(target=push_some,
                                                args=(base * 100,))
                               for base in range(4)]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    with GatewayClient(gateway.url) as client:
                        client.query("total_weight")
                        # Sever every live worker session; the next pushes
                        # must heal by reconnect + replay.
                        assert server.kill_sessions() > 0
                        for index in range(10):
                            client.push(items=[[index, 2.0]])
                        answer = client.query("total_weight")
                        health = client.healthz()
                        text = client.metrics()
                    assert answer["estimate"] == pytest.approx(60.0)
                    assert health["status"] == "ok"
                    assert health["shards"] == {"0": "ok", "1": "ok"}
            finally:
                cluster.close()

        # Gateway-side series: per-route counters and latency histograms.
        assert "# TYPE repro_gateway_requests_total counter" in text
        assert 'route="/v1/push"' in text
        assert 'repro_gateway_request_seconds_bucket{route="/v1/push"' in text
        assert "repro_gateway_inflight_requests" in text
        # Tracker/cluster-side series ride back on the stats piggyback.
        assert "repro_cluster_pushes_total" in text
        assert "repro_cluster_items_total" in text
        assert "repro_tracker_items_total" in text
        # Wire-backend series: the kill must show up as reconnects and
        # replayed frames (counts are global, so lower bounds only).
        assert _parse_counter_total(
            text, "repro_backend_reconnects_total") >= 1
        assert _parse_counter_total(
            text, "repro_backend_replay_frames_total") >= 1
        assert "repro_backend_call_seconds_bucket" in text

    def test_liveness_reports_unreachable_shards(self):
        server = WorkerServer().start()
        cluster = ShardedTracker.create(
            "hh/P2", shards=2, backend="socket",
            backend_options={"addresses": [server.address],
                             "reconnect_backoff": 0.02,
                             "reconnect_attempts": 1},
            num_sites=5, epsilon=0.1)
        try:
            assert cluster.liveness() == {"0": "ok", "1": "ok"}
            # Stop accepting AND sever live sessions: the probe's reconnect
            # now has nowhere to go.
            server.stop()
            server.kill_sessions()
            degraded = cluster.liveness()
            assert any(state.startswith("unreachable")
                       for state in degraded.values())
        finally:
            try:
                cluster.close()
            except Exception:
                pass

    def test_sharded_metrics_snapshot_dedupes_embedded_workers(self):
        cluster = ShardedTracker.create("hh/P2", shards=2, backend="thread",
                                        num_sites=5, epsilon=0.1)
        try:
            cluster.push_batch([(1, 1.0), (2, 2.0)])
            cluster.flush()
            snapshots = cluster.metrics_snapshot()
            merged = merge_snapshots(snapshots)
            names = {family["name"] for family in merged}
            assert "repro_cluster_items_total" in names
            assert "repro_tracker_items_total" in names
            # Thread shards share the parent registry: identity dedupe
            # must collapse them to one worker's snapshot.
            workers = [snap["worker"] for snap in snapshots if snap]
            assert len(set(workers)) == 1
        finally:
            cluster.close()


# ----------------------------------------------------- overhead guard
class TestInstrumentationOverhead:
    def test_instrumented_ingest_within_five_percent(self):
        """The hh/P3 batched ingest path must not slow measurably with the
        registry enabled vs disabled (the zero-cost-when-disabled flag is
        the baseline; enabled adds one counter bump per batch)."""
        from repro.data.zipfian import ZipfianStreamGenerator
        from repro.streaming.items import WeightedItemBatch

        sample = ZipfianStreamGenerator(universe_size=5_000, skew=2.0,
                                        beta=100.0, seed=7).generate(40_000)
        batch = WeightedItemBatch.from_pairs(sample.items)

        def run_once() -> float:
            tracker = repro.Tracker.create("hh/P3", num_sites=10,
                                           epsilon=0.05, chunk_size=4096)
            started = perf_counter()
            tracker.run(batch, query_at_end=False)
            return perf_counter() - started

        enabled_state = REGISTRY.enabled
        timings = {True: [], False: []}
        try:
            run_once()  # warm caches outside the measurement
            for _ in range(5):
                for enabled in (True, False):
                    REGISTRY.enable() if enabled else REGISTRY.disable()
                    timings[enabled].append(run_once())
        finally:
            REGISTRY.enable() if enabled_state else REGISTRY.disable()

        fastest_enabled = min(timings[True])
        fastest_disabled = min(timings[False])
        # 5% relative headroom plus 5ms absolute slack so scheduler noise
        # on tiny absolute timings cannot produce false failures.
        assert fastest_enabled <= fastest_disabled * 1.05 + 0.005, (
            f"instrumented ingest {fastest_enabled:.4f}s vs disabled "
            f"{fastest_disabled:.4f}s exceeds the 5% overhead budget")
