"""Unit tests for the workload generators (Zipfian streams, synthetic matrices)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import available_datasets, load_dataset, register_dataset
from repro.data.synthetic_matrix import (
    SyntheticMatrix,
    make_high_rank_matrix,
    make_low_rank_matrix,
    make_msd_like,
    make_pamap_like,
    row_stream,
)
from repro.data.zipfian import ZipfianStreamGenerator
from repro.streaming.items import MatrixRow


class TestZipfianStreamGenerator:
    def test_stream_length_and_weight_bounds(self):
        generator = ZipfianStreamGenerator(universe_size=100, skew=2.0, beta=50.0,
                                           seed=0)
        sample = generator.generate(2_000)
        assert len(sample) == 2_000
        weights = [weight for _, weight in sample.items]
        assert min(weights) >= 1.0
        assert max(weights) <= 50.0

    def test_ground_truth_consistency(self):
        generator = ZipfianStreamGenerator(universe_size=100, seed=1)
        sample = generator.generate(1_000)
        assert sum(sample.element_weights.values()) == pytest.approx(sample.total_weight)
        recomputed = {}
        for element, weight in sample.items:
            recomputed[element] = recomputed.get(element, 0.0) + weight
        assert recomputed == pytest.approx(sample.element_weights)

    def test_skew_concentrates_mass(self):
        generator = ZipfianStreamGenerator(universe_size=1_000, skew=2.0, beta=1.0,
                                           seed=2)
        sample = generator.generate(5_000)
        top_share = max(sample.element_weights.values()) / sample.total_weight
        assert top_share > 0.3  # zipf(2) puts ~60% of mass on the top element

    def test_heavy_hitters_helper(self):
        generator = ZipfianStreamGenerator(universe_size=50, skew=2.0, seed=3)
        sample = generator.generate(2_000)
        hitters = sample.heavy_hitters(0.05)
        assert hitters
        for element in hitters:
            assert sample.element_weights[element] >= 0.05 * sample.total_weight
        with pytest.raises(ValueError):
            sample.heavy_hitters(0.0)

    def test_unit_weights_when_beta_is_one(self):
        generator = ZipfianStreamGenerator(universe_size=10, beta=1.0, seed=4)
        sample = generator.generate(100)
        assert all(weight == 1.0 for _, weight in sample.items)

    def test_lazy_stream_yields_weighted_items(self):
        generator = ZipfianStreamGenerator(universe_size=10, seed=5)
        items = list(generator.stream(25))
        assert len(items) == 25
        assert all(item.weight >= 1.0 for item in items)

    def test_probabilities_sum_to_one(self):
        generator = ZipfianStreamGenerator(universe_size=200, skew=1.5, seed=6)
        assert generator.element_probabilities().sum() == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianStreamGenerator(universe_size=0)
        with pytest.raises(ValueError):
            ZipfianStreamGenerator(skew=0.0)
        with pytest.raises(ValueError):
            ZipfianStreamGenerator(beta=0.5)

    def test_deterministic_given_seed(self):
        first = ZipfianStreamGenerator(universe_size=100, seed=9).generate(200)
        second = ZipfianStreamGenerator(universe_size=100, seed=9).generate(200)
        assert first.items == second.items


class TestSyntheticMatrices:
    def test_low_rank_matrix_is_low_rank(self):
        matrix = make_low_rank_matrix(500, 20, effective_rank=5, seed=0)
        singular_values = np.linalg.svd(matrix, compute_uv=False)
        energy = singular_values ** 2
        assert energy[:5].sum() / energy.sum() > 0.999

    def test_high_rank_matrix_keeps_tail_energy(self):
        matrix = make_high_rank_matrix(500, 30, decay=0.97, seed=0)
        singular_values = np.linalg.svd(matrix, compute_uv=False)
        energy = singular_values ** 2
        assert energy[15:].sum() / energy.sum() > 0.05

    def test_shapes(self):
        assert make_low_rank_matrix(50, 8, 3, seed=1).shape == (50, 8)
        assert make_high_rank_matrix(60, 9, seed=1).shape == (60, 9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_low_rank_matrix(10, 5, effective_rank=6)
        with pytest.raises(ValueError):
            make_high_rank_matrix(10, 5, decay=1.5)

    def test_pamap_like_properties(self, low_rank_dataset):
        assert low_rank_dataset.dimension == 44
        assert low_rank_dataset.recommended_rank == 30
        # Rank-30 truncation keeps essentially all energy.
        s = np.linalg.svd(low_rank_dataset.rows, compute_uv=False)
        tail = (s[30:] ** 2).sum() / (s ** 2).sum()
        assert tail < 1e-4

    def test_msd_like_properties(self, high_rank_dataset):
        assert high_rank_dataset.dimension == 90
        assert high_rank_dataset.recommended_rank == 50
        s = np.linalg.svd(high_rank_dataset.rows, compute_uv=False)
        tail = (s[50:] ** 2).sum() / (s ** 2).sum()
        assert tail > 1e-3

    def test_metadata_helpers(self, low_rank_dataset):
        assert low_rank_dataset.num_rows == low_rank_dataset.rows.shape[0]
        assert low_rank_dataset.squared_frobenius == pytest.approx(
            float(np.sum(low_rank_dataset.rows ** 2)))
        assert low_rank_dataset.max_row_norm_squared() >= 0.0

    def test_row_stream(self, low_rank_dataset):
        rows = list(row_stream(low_rank_dataset.rows[:10]))
        assert len(rows) == 10
        assert all(isinstance(row, MatrixRow) for row in rows)
        assert rows[0].site is None

    def test_row_stream_with_assignments(self, low_rank_dataset):
        assignments = np.arange(10) % 3
        rows = list(row_stream(low_rank_dataset.rows[:10], assignments))
        assert [row.site for row in rows] == list(assignments)

    def test_row_stream_validation(self, low_rank_dataset):
        with pytest.raises(ValueError):
            list(row_stream(low_rank_dataset.rows[:10], np.zeros(3)))
        with pytest.raises(ValueError):
            list(row_stream(np.zeros(5)))


class TestDatasetRegistry:
    def test_available(self):
        names = available_datasets()
        assert "pamap" in names
        assert "msd" in names

    def test_load_with_row_override(self):
        dataset = load_dataset("pamap", num_rows=123)
        assert dataset.num_rows == 123

    def test_load_is_case_insensitive(self):
        assert load_dataset("MSD", num_rows=50).name == "msd_like"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("does-not-exist")

    def test_register_custom(self):
        def factory(num_rows=10, seed=0):
            return SyntheticMatrix(name="custom", rows=np.ones((num_rows, 3)),
                                   recommended_rank=1, description="test")

        register_dataset("custom-test", factory)
        dataset = load_dataset("custom-test", num_rows=7)
        assert dataset.num_rows == 7
        with pytest.raises(ValueError):
            register_dataset("", factory)
