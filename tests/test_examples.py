"""Smoke tests: every example script runs end to end and produces sane output."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "image_feature_monitoring.py",
    "network_traffic_heavy_hitters.py",
    "distributed_lsi_logs.py",
    "gateway_monitoring.py",
    "metrics_dashboard.py",
]


def run_example(name: str) -> subprocess.CompletedProcess:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"example {name} is missing"
    return subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600, check=False,
    )


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_cleanly(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_reports_both_problems():
    result = run_example("quickstart.py")
    assert "matrix tracking" in result.stdout.lower()
    assert "heavy hitters" in result.stdout.lower()
    assert "err" in result.stdout


def test_traffic_example_reports_heavy_destinations():
    result = run_example("network_traffic_heavy_hitters.py")
    assert "True heavy destinations" in result.stdout
    assert "10.0." in result.stdout


def test_gateway_example_serves_over_http():
    result = run_example("gateway_monitoring.py")
    assert "gateway serving hh/P2 at http://" in result.stdout
    assert "/api/v2/checkout" in result.stdout
    assert "partial=true poll: partial=False" in result.stdout
    assert "typed total-weight answer: TotalWeightAnswer" in result.stdout
