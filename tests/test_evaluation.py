"""Unit tests for the evaluation layer (metrics, sweeps, tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.metrics import (
    average_relative_error,
    evaluate_heavy_hitter_protocol,
    evaluate_matrix_protocol,
    exact_heavy_hitters,
    heavy_hitter_precision,
    heavy_hitter_recall,
    matrix_error_from_covariances,
    total_weight_relative_error,
)
from repro.evaluation.sweep import ParameterSweep, SweepResult, SweepRecord
from repro.evaluation.tables import format_series, format_table, format_value, render_figure
from repro.heavy_hitters.exact import ExactForwardingProtocol
from repro.matrix_tracking.baselines import CentralizedSVDBaseline


class TestHeavyHitterMetrics:
    def test_exact_heavy_hitters(self):
        weights = {"a": 60.0, "b": 30.0, "c": 10.0}
        assert exact_heavy_hitters(weights, 0.25) == ["a", "b"]
        assert exact_heavy_hitters(weights, 0.7) == []
        assert exact_heavy_hitters({}, 0.1) == []

    def test_recall(self):
        assert heavy_hitter_recall(["a", "b"], ["a", "b", "c"]) == pytest.approx(2 / 3)
        assert heavy_hitter_recall([], []) == 1.0
        assert heavy_hitter_recall(["x"], []) == 1.0

    def test_precision(self):
        assert heavy_hitter_precision(["a", "x"], ["a", "b"]) == pytest.approx(0.5)
        assert heavy_hitter_precision([], ["a"]) == 1.0

    def test_average_relative_error(self):
        estimates = {"a": 90.0, "b": 40.0}
        truth = {"a": 100.0, "b": 50.0, "c": 10.0}
        assert average_relative_error(estimates, truth, ["a", "b"]) == pytest.approx(
            (0.1 + 0.2) / 2)
        assert average_relative_error(estimates, truth, []) == 0.0

    def test_total_weight_relative_error(self):
        assert total_weight_relative_error(90.0, 100.0) == pytest.approx(0.1)
        assert total_weight_relative_error(5.0, 0.0) == 0.0

    def test_evaluate_protocol_end_to_end(self, zipf_sample):
        protocol = ExactForwardingProtocol(num_sites=4)
        for index, (element, weight) in enumerate(zipf_sample.items):
            protocol.process(index % 4, element, weight)
        evaluation = evaluate_heavy_hitter_protocol(
            protocol, zipf_sample.element_weights, phi=0.05,
            total_weight=zipf_sample.total_weight, name="exact")
        assert evaluation.recall == 1.0
        assert evaluation.precision == 1.0
        assert evaluation.average_error == pytest.approx(0.0, abs=1e-12)
        assert evaluation.messages == len(zipf_sample.items)
        record = evaluation.as_dict()
        assert record["protocol"] == "exact"
        assert record["msg"] == evaluation.messages


class TestMatrixMetrics:
    def test_error_from_covariances(self, rng):
        a = rng.standard_normal((40, 6))
        b = a[:20]
        expected = np.linalg.norm(a.T @ a - b.T @ b, 2) / np.sum(a ** 2)
        observed = matrix_error_from_covariances(a.T @ a, b, float(np.sum(a ** 2)))
        assert observed == pytest.approx(expected)
        assert matrix_error_from_covariances(a.T @ a, np.zeros((0, 6)), 0.0) == 0.0

    def test_evaluate_matrix_protocol(self, rng):
        rows = rng.standard_normal((60, 5))
        protocol = CentralizedSVDBaseline(num_sites=3, dimension=5)
        for index in range(rows.shape[0]):
            protocol.process(index % 3, rows[index])
        evaluation = evaluate_matrix_protocol(protocol, name="svd")
        assert evaluation.error <= 1e-10
        assert evaluation.messages == 60
        assert evaluation.sketch_rows == 60
        assert evaluation.frobenius_estimate_error <= 1e-12
        assert evaluation.as_dict()["protocol"] == "svd"

    def test_evaluate_with_explicit_original(self, rng):
        rows = rng.standard_normal((30, 4))
        protocol = CentralizedSVDBaseline(num_sites=2, dimension=4, rank=1)
        for index in range(rows.shape[0]):
            protocol.process(index % 2, rows[index])
        evaluation = evaluate_matrix_protocol(protocol, original=rows)
        assert evaluation.error > 0.0


class TestParameterSweep:
    def _toy_sweep(self):
        sweep = ParameterSweep(parameter="epsilon", values=[0.1, 0.2])
        factories = {
            "double": lambda value: ("double", value),
            "triple": lambda value: ("triple", value),
        }

        def run_one(protocol, value):
            name, _ = protocol
            factor = 2 if name == "double" else 3
            return {"err": value * factor, "msg": int(100 / value)}

        return sweep.run(factories, run_one)

    def test_records_and_series(self):
        result = self._toy_sweep()
        assert len(result.records) == 4
        assert result.protocols() == ["double", "triple"]
        assert result.values() == [0.1, 0.2]
        series = result.series("err")
        assert series["double"] == pytest.approx([0.2, 0.4])
        assert series["triple"] == pytest.approx([0.3, 0.6])

    def test_lookup_and_rows(self):
        result = self._toy_sweep()
        cell = result.lookup("double", 0.2)
        assert cell.metrics["err"] == pytest.approx(0.4)
        assert result.lookup("double", 99) is None
        rows = result.rows()
        assert len(rows) == 4
        assert {"protocol", "epsilon", "err", "msg"} <= set(rows[0])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ParameterSweep(parameter="", values=[1])
        with pytest.raises(ValueError):
            ParameterSweep(parameter="x", values=[])


class TestTables:
    def test_format_value(self):
        assert format_value(0.0) == "0"
        assert format_value(1.5) == "1.5"
        assert "e" in format_value(1e-7)
        assert format_value(None) == "None"
        assert format_value(12) == "12"

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 0.5}, {"a": 2, "b": 1e-9}], title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert len(text.splitlines()) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_series(self):
        text = format_series([0.1, 0.2], {"P1": [1, 2], "P2": [3, 4]},
                             x_label="epsilon", y_label="err")
        assert "epsilon" in text
        assert "P1" in text and "P2" in text

    def test_render_figure(self):
        result = SweepResult(parameter="epsilon", records=[
            SweepRecord("P1", "epsilon", 0.1, {"err": 0.01}),
            SweepRecord("P1", "epsilon", 0.2, {"err": 0.02}),
        ])
        text = render_figure(result, "err", title="figure test")
        assert "figure test" in text
        assert "P1" in text
