"""Tests for the sliding-window extension (the paper's stated open problem)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrix_tracking.sliding_window import (
    SlidingWindowFrequentDirections,
    SlidingWindowMatrixProtocol,
)
from repro.utils.linalg import covariance_error


class TestSlidingWindowFrequentDirections:
    def test_coverage_error_bounded(self, rng):
        epsilon = 0.2
        tracker = SlidingWindowFrequentDirections(dimension=10, window_size=300,
                                                  epsilon=epsilon)
        rows = rng.standard_normal((1_200, 10))
        tracker.update_many(rows)
        assert tracker.coverage_error() <= epsilon + 1e-9

    def test_forgets_old_distribution(self, rng):
        # First phase lives in one subspace, second phase in an orthogonal one;
        # after the window slides past the first phase, the sketch's energy
        # must be concentrated in the new subspace.
        dimension = 8
        window = 200
        tracker = SlidingWindowFrequentDirections(dimension=dimension,
                                                  window_size=window, epsilon=0.2)
        old_phase = np.zeros((600, dimension))
        old_phase[:, 0] = rng.standard_normal(600) * 5.0
        new_phase = np.zeros((600, dimension))
        new_phase[:, -1] = rng.standard_normal(600) * 5.0
        tracker.update_many(old_phase)
        tracker.update_many(new_phase)
        sketch = tracker.sketch_matrix()
        energy_old = float(np.linalg.norm(sketch[:, 0]) ** 2)
        energy_new = float(np.linalg.norm(sketch[:, -1]) ** 2)
        assert energy_new > 10 * max(energy_old, 1e-12)

    def test_window_and_block_accounting(self, rng):
        tracker = SlidingWindowFrequentDirections(dimension=5, window_size=100,
                                                  epsilon=0.25, num_blocks=4)
        rows = rng.standard_normal((350, 5))
        tracker.update_many(rows)
        assert tracker.block_size == 25
        assert tracker.rows_seen == 350
        # Never more blocks than needed to cover the window plus one stale.
        assert tracker.active_blocks <= 5
        assert 0.0 <= tracker.staleness_fraction() <= 0.3

    def test_small_stream_is_exact(self, rng):
        rows = rng.standard_normal((40, 6))
        tracker = SlidingWindowFrequentDirections(dimension=6, window_size=100,
                                                  epsilon=0.1)
        tracker.update_many(rows)
        assert covariance_error(rows, tracker.sketch_matrix()) <= 0.1 + 1e-9
        assert tracker.staleness_fraction() == 0.0

    def test_empty_tracker(self):
        tracker = SlidingWindowFrequentDirections(dimension=4, window_size=10,
                                                  epsilon=0.5)
        assert tracker.sketch_matrix().shape == (0, 4)
        assert tracker.coverage_error() == 0.0
        assert tracker.squared_norm_along(np.ones(4)) == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SlidingWindowFrequentDirections(dimension=0, window_size=10, epsilon=0.5)
        with pytest.raises(ValueError):
            SlidingWindowFrequentDirections(dimension=3, window_size=0, epsilon=0.5)
        with pytest.raises(ValueError):
            SlidingWindowFrequentDirections(dimension=3, window_size=10, epsilon=0.0)


class TestSlidingWindowMatrixProtocol:
    def test_coverage_error_bounded(self, rng):
        epsilon = 0.2
        protocol = SlidingWindowMatrixProtocol(num_sites=4, dimension=8,
                                               epsilon=epsilon, window_size=300)
        rows = rng.standard_normal((900, 8)) * 2.0
        for index in range(rows.shape[0]):
            protocol.process(index % 4, rows[index])
        assert protocol.coverage_error() <= epsilon + 1e-9

    def test_blocks_expire_and_messages_accumulate(self, rng):
        protocol = SlidingWindowMatrixProtocol(num_sites=3, dimension=6,
                                               epsilon=0.25, window_size=90,
                                               num_blocks=3)
        rows = rng.standard_normal((400, 6)) * 2.0
        for index in range(rows.shape[0]):
            protocol.process(index % 3, rows[index])
        assert protocol.block_size == 30
        assert protocol.active_blocks <= 4
        # The total communication includes the retired blocks' cost.
        assert protocol.total_messages > 0
        active_only = sum(entry["protocol"].total_messages
                          for entry in protocol._active)
        assert protocol.total_messages >= active_only

    def test_covered_rows_track_recent_data(self, rng):
        protocol = SlidingWindowMatrixProtocol(num_sites=2, dimension=5,
                                               epsilon=0.25, window_size=60,
                                               num_blocks=3)
        rows = rng.standard_normal((300, 5))
        for index in range(rows.shape[0]):
            protocol.process(index % 2, rows[index])
        covered = protocol.covered_squared_frobenius()
        window_norm = float(np.sum(rows[-60:] ** 2))
        # The covered rows are the window plus at most one extra block.
        extra_norm = float(np.sum(rows[-80:] ** 2))
        assert covered >= window_norm - 1e-6
        assert covered <= extra_norm + 1e-6

    def test_custom_protocol_factory(self, rng):
        from repro.matrix_tracking import BatchedFrequentDirectionsProtocol

        def factory():
            return BatchedFrequentDirectionsProtocol(num_sites=2, dimension=4,
                                                     epsilon=0.3)

        protocol = SlidingWindowMatrixProtocol(num_sites=2, dimension=4,
                                               epsilon=0.3, window_size=50,
                                               protocol_factory=factory)
        rows = rng.standard_normal((120, 4))
        for index in range(rows.shape[0]):
            protocol.process(index % 2, rows[index])
        assert protocol.coverage_error() <= 0.3 + 1e-9

    def test_empty_protocol(self):
        protocol = SlidingWindowMatrixProtocol(num_sites=2, dimension=3,
                                               epsilon=0.5, window_size=10)
        assert protocol.sketch_matrix().shape == (0, 3)
        assert protocol.coverage_error() == 0.0
        assert protocol.total_messages == 0
