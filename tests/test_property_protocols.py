"""Property-based tests (hypothesis) for the distributed protocols.

The deterministic protocols must satisfy their error guarantees for *every*
input stream and site assignment, so these are natural hypothesis targets:

* Heavy hitters P1/P2: all element estimates within ``ε·W``; total-weight
  estimate within ``ε·W``; recall of exact heavy hitters is perfect.
* Matrix P2: ``0 ≤ ‖Ax‖² − ‖Bx‖² ≤ ε·‖A‖²_F`` along arbitrary directions.
* Message accounting: message counters are non-negative and monotone.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heavy_hitters.p1_batched_mg import BatchedMisraGriesProtocol
from repro.heavy_hitters.p2_threshold import ThresholdedUpdatesProtocol
from repro.matrix_tracking.p2_deterministic import DeterministicDirectionProtocol

weighted_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=15),
              st.floats(min_value=1.0, max_value=20.0, allow_nan=False,
                        allow_infinity=False),
              st.integers(min_value=0, max_value=3)),   # site
    min_size=1, max_size=150,
)

row_streams = st.integers(min_value=2, max_value=5).flatmap(
    lambda cols: st.lists(
        st.tuples(
            st.lists(st.floats(min_value=-5.0, max_value=5.0, allow_nan=False,
                               allow_infinity=False),
                     min_size=cols, max_size=cols),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1, max_size=80,
    )
)


def exact_counts(stream):
    counts = {}
    for element, weight, _ in stream:
        counts[element] = counts.get(element, 0.0) + weight
    return counts


class TestHeavyHitterProtocolProperties:
    @given(stream=weighted_streams,
           epsilon=st.sampled_from([0.05, 0.1, 0.25]))
    @settings(max_examples=40, deadline=None)
    def test_p1_estimates_within_epsilon(self, stream, epsilon):
        protocol = BatchedMisraGriesProtocol(num_sites=4, epsilon=epsilon)
        for element, weight, site in stream:
            protocol.process(site, element, weight)
        total = sum(weight for _, weight, _ in stream)
        budget = epsilon * total + 1e-6
        for element, truth in exact_counts(stream).items():
            assert abs(protocol.estimate(element) - truth) <= budget
        assert abs(protocol.estimated_total_weight() - total) <= budget

    @given(stream=weighted_streams,
           epsilon=st.sampled_from([0.05, 0.1, 0.25]))
    @settings(max_examples=40, deadline=None)
    def test_p2_estimates_within_epsilon(self, stream, epsilon):
        protocol = ThresholdedUpdatesProtocol(num_sites=4, epsilon=epsilon)
        for element, weight, site in stream:
            protocol.process(site, element, weight)
        total = sum(weight for _, weight, _ in stream)
        budget = epsilon * total + 1e-6
        for element, truth in exact_counts(stream).items():
            assert abs(protocol.estimate(element) - truth) <= budget
        assert abs(protocol.estimated_total_weight() - total) <= budget

    @given(stream=weighted_streams)
    @settings(max_examples=25, deadline=None)
    def test_p1_perfect_recall_of_exact_heavy_hitters(self, stream):
        epsilon = 0.05
        phi = 0.2
        protocol = BatchedMisraGriesProtocol(num_sites=4, epsilon=epsilon)
        for element, weight, site in stream:
            protocol.process(site, element, weight)
        total = sum(weight for _, weight, _ in stream)
        returned = set(protocol.heavy_hitter_elements(phi))
        for element, truth in exact_counts(stream).items():
            if truth >= phi * total:
                assert element in returned

    @given(stream=weighted_streams)
    @settings(max_examples=25, deadline=None)
    def test_message_counters_consistent(self, stream):
        protocol = ThresholdedUpdatesProtocol(num_sites=4, epsilon=0.1)
        previous = 0
        for element, weight, site in stream:
            protocol.process(site, element, weight)
            assert protocol.total_messages >= previous
            previous = protocol.total_messages
        counts = protocol.message_counts()
        assert counts["total_messages"] == protocol.total_messages
        assert counts["upstream_messages"] + counts["downstream_messages"] \
            == protocol.total_messages


class TestMatrixProtocolProperties:
    @given(rows=row_streams, epsilon=st.sampled_from([0.1, 0.3]),
           seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_p2_guarantee_along_random_directions(self, rows, epsilon, seed):
        dimension = len(rows[0][0])
        protocol = DeterministicDirectionProtocol(num_sites=4, dimension=dimension,
                                                  epsilon=epsilon)
        matrix = []
        for values, site in rows:
            row = np.asarray(values, dtype=np.float64)
            if not np.any(row):
                continue
            protocol.process(site, row)
            matrix.append(row)
        if not matrix:
            return
        stacked = np.vstack(matrix)
        frobenius = float(np.sum(stacked ** 2))
        sketch = protocol.sketch_matrix()
        rng = np.random.default_rng(seed)
        for _ in range(5):
            x = rng.standard_normal(dimension)
            norm = np.linalg.norm(x)
            if norm == 0:
                continue
            x = x / norm
            true = float(np.linalg.norm(stacked @ x) ** 2)
            approx = float(np.linalg.norm(sketch @ x) ** 2) if sketch.size else 0.0
            assert true - approx >= -1e-6 * max(1.0, true)
            assert true - approx <= epsilon * frobenius + 1e-6

    @given(rows=row_streams)
    @settings(max_examples=20, deadline=None)
    def test_p2_norm_estimate_bracketed(self, rows):
        dimension = len(rows[0][0])
        epsilon = 0.2
        protocol = DeterministicDirectionProtocol(num_sites=4, dimension=dimension,
                                                  epsilon=epsilon)
        total = 0.0
        for values, site in rows:
            row = np.asarray(values, dtype=np.float64)
            if not np.any(row):
                continue
            protocol.process(site, row)
            total += float(np.dot(row, row))
        estimate = protocol.estimated_squared_frobenius()
        assert estimate <= total + 1e-6
        assert total - estimate <= 2 * epsilon * total + 1e-6
