"""Unit tests for matrix tracking protocols P1 and P2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrix_tracking.p1_batched_fd import BatchedFrequentDirectionsProtocol
from repro.matrix_tracking.p2_deterministic import DeterministicDirectionProtocol
from repro.streaming.partition import RoundRobinPartitioner
from repro.utils.linalg import covariance_error, squared_frobenius


def feed(protocol, rows):
    partitioner = RoundRobinPartitioner(protocol.num_sites)
    for index in range(rows.shape[0]):
        protocol.process(partitioner.assign(index, None), rows[index])


class TestMatrixProtocolP1:
    def test_error_within_epsilon(self, low_rank_dataset):
        epsilon = 0.1
        protocol = BatchedFrequentDirectionsProtocol(
            num_sites=8, dimension=low_rank_dataset.dimension, epsilon=epsilon)
        feed(protocol, low_rank_dataset.rows)
        assert protocol.approximation_error() <= epsilon + 1e-9

    def test_error_on_high_rank_data(self, high_rank_dataset):
        epsilon = 0.2
        protocol = BatchedFrequentDirectionsProtocol(
            num_sites=8, dimension=high_rank_dataset.dimension, epsilon=epsilon)
        feed(protocol, high_rank_dataset.rows)
        assert protocol.approximation_error() <= epsilon + 1e-9

    def test_ground_truth_accumulators(self, low_rank_dataset):
        protocol = BatchedFrequentDirectionsProtocol(
            num_sites=4, dimension=low_rank_dataset.dimension, epsilon=0.2)
        feed(protocol, low_rank_dataset.rows)
        assert protocol.observed_squared_frobenius == pytest.approx(
            squared_frobenius(low_rank_dataset.rows))
        assert np.allclose(protocol.observed_covariance(),
                           low_rank_dataset.rows.T @ low_rank_dataset.rows)

    def test_sketch_never_overestimates_norms(self, low_rank_dataset, rng):
        protocol = BatchedFrequentDirectionsProtocol(
            num_sites=4, dimension=low_rank_dataset.dimension, epsilon=0.2)
        feed(protocol, low_rank_dataset.rows)
        for _ in range(10):
            x = rng.standard_normal(low_rank_dataset.dimension)
            x /= np.linalg.norm(x)
            true = float(np.linalg.norm(low_rank_dataset.rows @ x) ** 2)
            assert protocol.squared_norm_along(x) <= true + 1e-6

    def test_norm_estimate_close(self, low_rank_dataset):
        protocol = BatchedFrequentDirectionsProtocol(
            num_sites=4, dimension=low_rank_dataset.dimension, epsilon=0.1)
        feed(protocol, low_rank_dataset.rows)
        assert protocol.estimated_squared_frobenius() == pytest.approx(
            low_rank_dataset.squared_frobenius, rel=0.1)

    def test_flush_all_sites_reduces_error(self, low_rank_dataset):
        protocol = BatchedFrequentDirectionsProtocol(
            num_sites=8, dimension=low_rank_dataset.dimension, epsilon=0.3)
        feed(protocol, low_rank_dataset.rows)
        before = protocol.approximation_error()
        protocol.flush_all_sites()
        after = protocol.approximation_error()
        assert after <= before + 1e-9

    def test_sketch_size_default_from_epsilon(self):
        protocol = BatchedFrequentDirectionsProtocol(num_sites=2, dimension=5,
                                                     epsilon=0.1)
        assert protocol.sketch_size == 40

    def test_messages_grow_with_stream(self, low_rank_dataset):
        protocol = BatchedFrequentDirectionsProtocol(
            num_sites=4, dimension=low_rank_dataset.dimension, epsilon=0.1)
        feed(protocol, low_rank_dataset.rows[:200])
        first = protocol.total_messages
        feed(protocol, low_rank_dataset.rows[200:400])
        assert protocol.total_messages > first

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BatchedFrequentDirectionsProtocol(num_sites=0, dimension=3, epsilon=0.1)
        with pytest.raises(ValueError):
            BatchedFrequentDirectionsProtocol(num_sites=2, dimension=3, epsilon=0.0)

    def test_wrong_row_dimension_rejected(self):
        protocol = BatchedFrequentDirectionsProtocol(num_sites=2, dimension=3,
                                                     epsilon=0.1)
        with pytest.raises(ValueError):
            protocol.process(0, np.ones(4))


class TestMatrixProtocolP2:
    def test_error_within_epsilon_low_rank(self, low_rank_dataset):
        epsilon = 0.1
        protocol = DeterministicDirectionProtocol(
            num_sites=8, dimension=low_rank_dataset.dimension, epsilon=epsilon)
        feed(protocol, low_rank_dataset.rows)
        assert protocol.approximation_error() <= epsilon + 1e-9

    def test_error_within_epsilon_high_rank(self, high_rank_dataset):
        epsilon = 0.1
        protocol = DeterministicDirectionProtocol(
            num_sites=8, dimension=high_rank_dataset.dimension, epsilon=epsilon)
        feed(protocol, high_rank_dataset.rows)
        assert protocol.approximation_error() <= epsilon + 1e-9

    def test_one_sided_guarantee(self, low_rank_dataset, rng):
        # Theorem 4: 0 <= ||Ax||^2 - ||Bx||^2, i.e. the sketch never
        # overestimates the norm along any direction.
        protocol = DeterministicDirectionProtocol(
            num_sites=4, dimension=low_rank_dataset.dimension, epsilon=0.1)
        feed(protocol, low_rank_dataset.rows)
        for _ in range(15):
            x = rng.standard_normal(low_rank_dataset.dimension)
            x /= np.linalg.norm(x)
            true = float(np.linalg.norm(low_rank_dataset.rows @ x) ** 2)
            assert protocol.squared_norm_along(x) <= true + 1e-6

    def test_norm_estimate_within_two_epsilon(self, low_rank_dataset):
        epsilon = 0.1
        protocol = DeterministicDirectionProtocol(
            num_sites=6, dimension=low_rank_dataset.dimension, epsilon=epsilon)
        feed(protocol, low_rank_dataset.rows)
        truth = low_rank_dataset.squared_frobenius
        assert abs(protocol.estimated_squared_frobenius() - truth) \
            <= 2 * epsilon * truth + 1e-6

    def test_fewer_messages_than_stream_length(self, low_rank_dataset):
        protocol = DeterministicDirectionProtocol(
            num_sites=8, dimension=low_rank_dataset.dimension, epsilon=0.2)
        feed(protocol, low_rank_dataset.rows)
        assert protocol.total_messages < low_rank_dataset.num_rows

    def test_error_decreases_with_smaller_epsilon(self, high_rank_dataset):
        loose = DeterministicDirectionProtocol(
            num_sites=6, dimension=high_rank_dataset.dimension, epsilon=0.5)
        tight = DeterministicDirectionProtocol(
            num_sites=6, dimension=high_rank_dataset.dimension, epsilon=0.02)
        feed(loose, high_rank_dataset.rows)
        feed(tight, high_rank_dataset.rows)
        assert tight.approximation_error() <= loose.approximation_error() + 1e-9
        assert tight.total_messages >= loose.total_messages

    def test_coordinator_sketch_compression(self, low_rank_dataset):
        protocol = DeterministicDirectionProtocol(
            num_sites=4, dimension=low_rank_dataset.dimension, epsilon=0.1,
            coordinator_sketch_size=60)
        feed(protocol, low_rank_dataset.rows)
        assert protocol.sketch_matrix().shape[0] <= 60
        # Compression adds at most 2/60 of the squared norm to the error.
        assert protocol.approximation_error() <= 0.1 + 2.0 / 60 + 1e-9

    def test_rounds_completed(self, low_rank_dataset):
        protocol = DeterministicDirectionProtocol(
            num_sites=4, dimension=low_rank_dataset.dimension, epsilon=0.1)
        feed(protocol, low_rank_dataset.rows)
        assert protocol.rounds_completed >= 1

    def test_error_metric_matches_direct_computation(self, low_rank_dataset):
        protocol = DeterministicDirectionProtocol(
            num_sites=4, dimension=low_rank_dataset.dimension, epsilon=0.2)
        feed(protocol, low_rank_dataset.rows)
        direct = covariance_error(low_rank_dataset.rows, protocol.sketch_matrix())
        assert protocol.approximation_error() == pytest.approx(direct, rel=1e-6)

    def test_empty_protocol_state(self):
        protocol = DeterministicDirectionProtocol(num_sites=2, dimension=3,
                                                  epsilon=0.1)
        assert protocol.sketch_matrix().shape == (0, 3)
        assert protocol.approximation_error() == 0.0
        assert protocol.estimated_squared_frobenius() == 0.0
