"""Unit tests for weighted heavy-hitter protocols P3 (wor/wr) and P4."""

from __future__ import annotations

import pytest

from repro.heavy_hitters.exact import ExactForwardingProtocol
from repro.heavy_hitters.p3_sampling import (
    PrioritySamplingProtocol,
    WithReplacementSamplingProtocol,
)
from repro.heavy_hitters.p4_randomized import RandomizedReportingProtocol
from repro.streaming.partition import RoundRobinPartitioner


def feed(protocol, items):
    partitioner = RoundRobinPartitioner(protocol.num_sites)
    for index, (element, weight) in enumerate(items):
        protocol.process(partitioner.assign(index, element), element, weight)


class TestProtocolP3WithoutReplacement:
    def test_heavy_hitter_recall(self, zipf_sample):
        protocol = PrioritySamplingProtocol(num_sites=10, epsilon=0.05,
                                            sample_size=400, seed=0)
        feed(protocol, zipf_sample.items)
        returned = set(protocol.heavy_hitter_elements(0.05))
        for element in zipf_sample.heavy_hitters(0.05):
            assert element in returned

    def test_estimates_of_heavy_elements(self, zipf_sample):
        protocol = PrioritySamplingProtocol(num_sites=10, epsilon=0.05,
                                            sample_size=500, seed=1)
        feed(protocol, zipf_sample.items)
        budget = 0.1 * zipf_sample.total_weight
        for element in zipf_sample.heavy_hitters(0.05):
            truth = zipf_sample.element_weights[element]
            assert abs(protocol.estimate(element) - truth) <= budget

    def test_total_weight_estimate(self, zipf_sample):
        protocol = PrioritySamplingProtocol(num_sites=10, epsilon=0.05,
                                            sample_size=500, seed=2)
        feed(protocol, zipf_sample.items)
        assert protocol.estimated_total_weight() == pytest.approx(
            zipf_sample.total_weight, rel=0.25
        )

    def test_exact_when_sample_holds_everything(self):
        items = [("a", 3.0), ("b", 1.0), ("a", 2.0), ("c", 10.0)]
        protocol = PrioritySamplingProtocol(num_sites=2, epsilon=0.5,
                                            sample_size=100, seed=0)
        feed(protocol, items)
        assert protocol.estimate("a") == pytest.approx(5.0)
        assert protocol.estimate("c") == pytest.approx(10.0)
        assert protocol.estimated_total_weight() == pytest.approx(16.0)

    def test_fewer_messages_than_forwarding_everything(self, zipf_sample):
        exact = ExactForwardingProtocol(num_sites=10)
        sampled = PrioritySamplingProtocol(num_sites=10, epsilon=0.05,
                                           sample_size=100, seed=3)
        feed(exact, zipf_sample.items)
        feed(sampled, zipf_sample.items)
        assert sampled.total_messages < exact.total_messages

    def test_rounds_advance_and_threshold_doubles(self, zipf_sample):
        protocol = PrioritySamplingProtocol(num_sites=10, epsilon=0.05,
                                            sample_size=50, seed=4)
        feed(protocol, zipf_sample.items)
        assert protocol.rounds_completed >= 1
        assert protocol.threshold == pytest.approx(2.0 ** protocol.rounds_completed)

    def test_retained_sample_size_bounded(self, zipf_sample):
        sample_size = 60
        protocol = PrioritySamplingProtocol(num_sites=10, epsilon=0.05,
                                            sample_size=sample_size, seed=5)
        feed(protocol, zipf_sample.items)
        # Q_j plus Q_{j+1} never exceeds the previous round's content plus s.
        assert len(protocol.sample_with_adjusted_weights()) <= 3 * sample_size

    def test_default_sample_size_from_epsilon(self):
        protocol = PrioritySamplingProtocol(num_sites=2, epsilon=0.1)
        assert protocol.sample_size >= 100

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            PrioritySamplingProtocol(num_sites=2, epsilon=0.1, sample_size=0)


class TestProtocolP3WithReplacement:
    def test_heavy_hitter_recall(self, zipf_sample):
        protocol = WithReplacementSamplingProtocol(num_sites=10, epsilon=0.05,
                                                   num_samplers=300, seed=0)
        feed(protocol, zipf_sample.items)
        returned = set(protocol.heavy_hitter_elements(0.05))
        for element in zipf_sample.heavy_hitters(0.05):
            assert element in returned

    def test_total_weight_estimate(self, zipf_sample):
        protocol = WithReplacementSamplingProtocol(num_sites=10, epsilon=0.05,
                                                   num_samplers=300, seed=1)
        feed(protocol, zipf_sample.items)
        assert protocol.estimated_total_weight() == pytest.approx(
            zipf_sample.total_weight, rel=0.3
        )

    def test_exact_mode_before_any_rejection(self):
        items = [("a", 2.0), ("b", 4.0)]
        protocol = WithReplacementSamplingProtocol(num_sites=1, epsilon=0.5,
                                                   num_samplers=10, seed=0)
        feed(protocol, items)
        assert protocol.estimate("b") == pytest.approx(4.0)

    def test_uses_more_messages_than_wor_at_same_size(self, zipf_sample):
        wor = PrioritySamplingProtocol(num_sites=10, epsilon=0.05,
                                       sample_size=150, seed=7)
        wr = WithReplacementSamplingProtocol(num_sites=10, epsilon=0.05,
                                             num_samplers=150, seed=7)
        feed(wor, zipf_sample.items)
        feed(wr, zipf_sample.items)
        assert wr.total_messages >= wor.total_messages

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            WithReplacementSamplingProtocol(num_sites=2, epsilon=0.1, num_samplers=0)


class TestProtocolP4:
    def test_heavy_hitter_recall(self, zipf_sample):
        protocol = RandomizedReportingProtocol(num_sites=10, epsilon=0.05, seed=0)
        feed(protocol, zipf_sample.items)
        returned = set(protocol.heavy_hitter_elements(0.05))
        for element in zipf_sample.heavy_hitters(0.05):
            assert element in returned

    def test_estimates_of_heavy_elements_reasonable(self, zipf_sample):
        protocol = RandomizedReportingProtocol(num_sites=10, epsilon=0.05, seed=1)
        feed(protocol, zipf_sample.items)
        budget = 3 * 0.05 * zipf_sample.total_weight
        for element in zipf_sample.heavy_hitters(0.05):
            truth = zipf_sample.element_weights[element]
            assert abs(protocol.estimate(element) - truth) <= budget

    def test_total_weight_estimate(self, zipf_sample):
        protocol = RandomizedReportingProtocol(num_sites=10, epsilon=0.05, seed=2)
        feed(protocol, zipf_sample.items)
        assert protocol.estimated_total_weight() == pytest.approx(
            zipf_sample.total_weight, rel=0.3
        )

    def test_broadcast_weight_is_lower_bound_of_true_weight(self, zipf_sample):
        protocol = RandomizedReportingProtocol(num_sites=10, epsilon=0.05, seed=3)
        feed(protocol, zipf_sample.items)
        assert protocol.broadcast_weight <= zipf_sample.total_weight + 1e-6
        assert protocol.broadcast_weight > 0.0

    def test_message_savings_at_moderate_epsilon(self, zipf_sample):
        protocol = RandomizedReportingProtocol(num_sites=25, epsilon=0.1, seed=4)
        feed(protocol, zipf_sample.items)
        assert protocol.total_messages < len(zipf_sample.items)

    def test_estimates_dict_consistent(self, zipf_sample):
        protocol = RandomizedReportingProtocol(num_sites=5, epsilon=0.1, seed=5)
        feed(protocol, zipf_sample.items[:500])
        for element, value in protocol.estimates().items():
            assert protocol.estimate(element) == pytest.approx(value)

    def test_empty_protocol_returns_no_hitters(self):
        protocol = RandomizedReportingProtocol(num_sites=2, epsilon=0.1, seed=0)
        assert protocol.heavy_hitters(0.1) == []
