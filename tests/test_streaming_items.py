"""Unit tests for stream item types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming.items import MatrixRow, WeightedItem


class TestWeightedItem:
    def test_fields(self):
        item = WeightedItem(element="ip-10.0.0.1", weight=3.5)
        assert item.element == "ip-10.0.0.1"
        assert item.weight == 3.5
        assert item.site is None

    def test_default_weight(self):
        assert WeightedItem(element=1).weight == 1.0

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            WeightedItem(element=1, weight=0.0)
        with pytest.raises(ValueError):
            WeightedItem(element=1, weight=-2.0)

    def test_at_site(self):
        item = WeightedItem(element="a", weight=2.0)
        assigned = item.at_site(3)
        assert assigned.site == 3
        assert assigned.element == "a"
        assert item.site is None

    def test_frozen(self):
        item = WeightedItem(element="a")
        with pytest.raises(AttributeError):
            item.weight = 5.0


class TestMatrixRow:
    def test_weight_is_squared_norm(self):
        row = MatrixRow(values=np.array([3.0, 4.0]))
        assert row.weight == pytest.approx(25.0)
        assert row.dimension == 2

    def test_values_coerced_to_float_array(self):
        row = MatrixRow(values=[1, 2, 3])
        assert row.values.dtype == np.float64

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            MatrixRow(values=[1.0, float("inf")])

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            MatrixRow(values=np.ones((2, 2)))

    def test_at_site(self):
        row = MatrixRow(values=np.array([1.0, 0.0]))
        assert row.at_site(7).site == 7

    def test_equality_and_hash(self):
        first = MatrixRow(values=np.array([1.0, 2.0]), site=0)
        second = MatrixRow(values=np.array([1.0, 2.0]), site=0)
        third = MatrixRow(values=np.array([1.0, 2.5]), site=0)
        assert first == second
        assert hash(first) == hash(second)
        assert first != third
        assert first != "not a row"


class TestWeightedItemBatch:
    def test_from_pairs_and_accessors(self):
        from repro.streaming.items import WeightedItemBatch

        batch = WeightedItemBatch.from_pairs([("a", 1.0), ("b", 2.5), ("a", 3.0)])
        assert len(batch) == 3
        assert batch.total_weight == pytest.approx(6.5)
        assert batch.sites is None
        assert list(batch.elements) == ["a", "b", "a"]

    def test_rejects_bad_weights(self):
        from repro.streaming.items import WeightedItemBatch

        with pytest.raises(ValueError):
            WeightedItemBatch(elements=np.array([1, 2]), weights=np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            WeightedItemBatch(elements=np.array([1, 2]), weights=np.array([1.0]))

    def test_sites_length_checked(self):
        from repro.streaming.items import WeightedItemBatch

        with pytest.raises(ValueError):
            WeightedItemBatch(elements=np.array([1, 2]),
                              weights=np.array([1.0, 2.0]),
                              sites=np.array([0]))

    def test_slicing_and_indexing(self):
        from repro.streaming.items import WeightedItemBatch

        batch = WeightedItemBatch(elements=np.array([7, 8, 9]),
                                  weights=np.array([1.0, 2.0, 3.0]),
                                  sites=np.array([0, 1, 0]))
        view = batch[1:]
        assert len(view) == 2
        assert list(view.elements) == [8, 9]
        assert list(view.sites) == [1, 0]
        item = batch[2]
        assert item.element == 9 and item.weight == 3.0 and item.site == 0

    def test_iteration_yields_items(self):
        from repro.streaming.items import WeightedItem, WeightedItemBatch

        batch = WeightedItemBatch.from_pairs([("x", 2.0)])
        items = list(batch)
        assert isinstance(items[0], WeightedItem)
        assert items[0].element == "x"

    def test_from_items_keeps_sites(self):
        from repro.streaming.items import WeightedItem, WeightedItemBatch

        batch = WeightedItemBatch.from_items(
            [WeightedItem("a", 1.0, site=2), WeightedItem("b", 2.0, site=0)])
        assert list(batch.sites) == [2, 0]
        with pytest.raises(ValueError):
            WeightedItemBatch.from_items(
                [WeightedItem("a", 1.0, site=2), WeightedItem("b", 2.0)])

    def test_tuple_elements_stay_object_column(self):
        from repro.streaming.items import WeightedItemBatch

        batch = WeightedItemBatch.from_pairs([(("u", 1), 1.0), (("v", 2), 2.0)])
        assert batch.elements.dtype == object
        assert batch.elements[0] == ("u", 1)


class TestMatrixRowBatch:
    def test_from_rows_and_accessors(self):
        from repro.streaming.items import MatrixRowBatch

        batch = MatrixRowBatch.from_rows([np.array([1.0, 0.0]), np.array([0.0, 2.0])])
        assert len(batch) == 2
        assert batch.dimension == 2
        assert batch.squared_frobenius == pytest.approx(5.0)

    def test_slicing_and_indexing(self):
        from repro.streaming.items import MatrixRow, MatrixRowBatch

        values = np.arange(6, dtype=np.float64).reshape(3, 2)
        batch = MatrixRowBatch(values=values, sites=np.array([0, 1, 2]))
        view = batch[:2]
        assert len(view) == 2
        assert list(view.sites) == [0, 1]
        row = batch[1]
        assert isinstance(row, MatrixRow)
        assert row.site == 1

    def test_rejects_non_finite(self):
        from repro.streaming.items import MatrixRowBatch

        with pytest.raises(ValueError):
            MatrixRowBatch(values=np.array([[1.0, np.inf]]))
