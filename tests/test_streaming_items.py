"""Unit tests for stream item types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming.items import MatrixRow, WeightedItem


class TestWeightedItem:
    def test_fields(self):
        item = WeightedItem(element="ip-10.0.0.1", weight=3.5)
        assert item.element == "ip-10.0.0.1"
        assert item.weight == 3.5
        assert item.site is None

    def test_default_weight(self):
        assert WeightedItem(element=1).weight == 1.0

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            WeightedItem(element=1, weight=0.0)
        with pytest.raises(ValueError):
            WeightedItem(element=1, weight=-2.0)

    def test_at_site(self):
        item = WeightedItem(element="a", weight=2.0)
        assigned = item.at_site(3)
        assert assigned.site == 3
        assert assigned.element == "a"
        assert item.site is None

    def test_frozen(self):
        item = WeightedItem(element="a")
        with pytest.raises(AttributeError):
            item.weight = 5.0


class TestMatrixRow:
    def test_weight_is_squared_norm(self):
        row = MatrixRow(values=np.array([3.0, 4.0]))
        assert row.weight == pytest.approx(25.0)
        assert row.dimension == 2

    def test_values_coerced_to_float_array(self):
        row = MatrixRow(values=[1, 2, 3])
        assert row.values.dtype == np.float64

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            MatrixRow(values=[1.0, float("inf")])

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            MatrixRow(values=np.ones((2, 2)))

    def test_at_site(self):
        row = MatrixRow(values=np.array([1.0, 0.0]))
        assert row.at_site(7).site == 7

    def test_equality_and_hash(self):
        first = MatrixRow(values=np.array([1.0, 2.0]), site=0)
        second = MatrixRow(values=np.array([1.0, 2.0]), site=0)
        third = MatrixRow(values=np.array([1.0, 2.5]), site=0)
        assert first == second
        assert hash(first) == hash(second)
        assert first != third
        assert first != "not a row"
