"""Unit tests for the weighted reservoir and the exact baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.exact import ExactFrequencyCounter, ExactMatrix
from repro.sketch.reservoir import WeightedReservoir
from repro.utils.linalg import covariance_error


class TestWeightedReservoir:
    def test_capacity_respected(self, zipf_sample):
        reservoir = WeightedReservoir(capacity=25, seed=0)
        for element, weight in zipf_sample.items:
            reservoir.update(element, weight)
        assert len(reservoir) == 25

    def test_under_capacity_keeps_everything(self):
        reservoir = WeightedReservoir(capacity=100, seed=0)
        for index in range(30):
            reservoir.update(index, 1.0)
        assert len(reservoir) == 30
        assert set(reservoir.payloads()) == set(range(30))

    def test_heavy_items_much_more_likely(self, zipf_sample):
        # The heaviest element of a skewed stream should be retained nearly
        # always by a weighted reservoir of moderate size.
        heaviest = max(zipf_sample.element_weights,
                       key=zipf_sample.element_weights.get)
        hits = 0
        for seed in range(10):
            reservoir = WeightedReservoir(capacity=50, seed=seed)
            for element, weight in zipf_sample.items:
                reservoir.update(element, weight)
            if heaviest in reservoir.payloads():
                hits += 1
        assert hits >= 8

    def test_counts_and_weight(self):
        reservoir = WeightedReservoir(capacity=2, seed=0)
        reservoir.update("a", 1.0)
        reservoir.update("b", 2.0)
        reservoir.update("c", 3.0)
        assert reservoir.items_seen == 3
        assert reservoir.total_weight == pytest.approx(6.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            WeightedReservoir(capacity=0)
        reservoir = WeightedReservoir(capacity=2, seed=0)
        with pytest.raises(ValueError):
            reservoir.update("a", -1.0)


class TestExactFrequencyCounter:
    def test_exact_counts(self, zipf_sample):
        counter = ExactFrequencyCounter()
        counter.update_many(zipf_sample.items)
        for element, truth in zipf_sample.element_weights.items():
            assert counter.estimate(element) == pytest.approx(truth)
        assert counter.total_weight == pytest.approx(zipf_sample.total_weight)

    def test_unseen_element(self):
        counter = ExactFrequencyCounter()
        counter.update("a", 1.0)
        assert counter.estimate("b") == 0.0

    def test_merge(self):
        left = ExactFrequencyCounter()
        right = ExactFrequencyCounter()
        left.update("a", 1.0)
        right.update("a", 2.0)
        right.update("b", 3.0)
        merged = left.merge(right)
        assert merged.estimate("a") == pytest.approx(3.0)
        assert merged.estimate("b") == pytest.approx(3.0)
        assert merged.total_weight == pytest.approx(6.0)

    def test_merge_type_check(self):
        with pytest.raises(TypeError):
            ExactFrequencyCounter().merge(object())

    def test_heavy_hitters_are_exact(self, zipf_sample):
        counter = ExactFrequencyCounter()
        counter.update_many(zipf_sample.items)
        returned = [element for element, _ in counter.heavy_hitters(0.05)]
        assert returned == zipf_sample.heavy_hitters(0.05)


class TestExactMatrix:
    def test_exact_queries(self, small_matrix):
        store = ExactMatrix(dimension=small_matrix.shape[1])
        store.update_many(small_matrix)
        x = np.ones(small_matrix.shape[1]) / np.sqrt(small_matrix.shape[1])
        assert store.squared_norm_along(x) == pytest.approx(
            float(np.linalg.norm(small_matrix @ x) ** 2)
        )
        assert store.squared_frobenius == pytest.approx(float(np.sum(small_matrix ** 2)))
        assert store.rows_seen == small_matrix.shape[0]
        assert covariance_error(small_matrix, store.sketch_matrix()) <= 1e-12

    def test_without_row_retention(self, small_matrix):
        store = ExactMatrix(dimension=small_matrix.shape[1], keep_rows=False)
        store.update_many(small_matrix)
        with pytest.raises(RuntimeError):
            store.matrix()
        # The returned factor still answers norm queries exactly.
        assert covariance_error(small_matrix, store.sketch_matrix()) <= 1e-8

    def test_best_rank_k(self, rng):
        basis = rng.standard_normal((2, 6))
        matrix = rng.standard_normal((50, 2)) @ basis
        store = ExactMatrix(dimension=6)
        store.update_many(matrix)
        approx = store.best_rank_k(2)
        assert np.allclose(approx, matrix, atol=1e-8)

    def test_top_singular_values(self, small_matrix):
        store = ExactMatrix(dimension=small_matrix.shape[1])
        store.update_many(small_matrix)
        expected = np.linalg.svd(small_matrix, compute_uv=False)
        observed = store.top_singular_values(3)
        assert np.allclose(observed, expected[:3], rtol=1e-6)

    def test_rejects_wrong_dimension(self):
        store = ExactMatrix(dimension=4)
        with pytest.raises(ValueError):
            store.update(np.ones(3))

    def test_empty_matrix(self):
        store = ExactMatrix(dimension=3)
        assert store.matrix().shape == (0, 3)
        assert store.squared_norm_along(np.ones(3)) == 0.0
