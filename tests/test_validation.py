"""Unit tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_epsilon,
    check_matrix,
    check_non_negative_float,
    check_phi,
    check_positive_int,
    check_probability,
    check_rank,
    check_row,
    check_site_count,
    check_unit_vector,
    check_weight,
)


class TestCheckEpsilon:
    def test_accepts_valid_values(self):
        assert check_epsilon(0.5) == 0.5
        assert check_epsilon(1) == 1.0
        assert check_epsilon(1e-6) == 1e-6

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_epsilon(0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_epsilon(-0.1)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_epsilon(1.5)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_epsilon(float("nan"))
        with pytest.raises(ValueError):
            check_epsilon(float("inf"))

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_epsilon("0.1")

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="my_eps"):
            check_epsilon(2.0, name="my_eps")


class TestCheckPhi:
    def test_accepts_valid_values(self):
        assert check_phi(0.05) == 0.05
        assert check_phi(1.0) == 1.0

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_phi(0.0)
        with pytest.raises(ValueError):
            check_phi(-0.2)

    def test_rejects_phi_not_above_half_epsilon(self):
        with pytest.raises(ValueError):
            check_phi(0.01, epsilon=0.05)

    def test_accepts_phi_above_half_epsilon(self):
        assert check_phi(0.05, epsilon=0.01) == 0.05

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_phi(None)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3) == 3
        assert check_positive_int(np.int64(5)) == 5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(0)
        with pytest.raises(ValueError):
            check_positive_int(-1)

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_positive_int(True)
        with pytest.raises(TypeError):
            check_positive_int(2.5)


class TestCheckNonNegativeFloat:
    def test_accepts_zero_and_positive(self):
        assert check_non_negative_float(0.0) == 0.0
        assert check_non_negative_float(3) == 3.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_float(-1e-9)

    def test_rejects_infinite(self):
        with pytest.raises(ValueError):
            check_non_negative_float(float("inf"))

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_non_negative_float([1.0])


class TestCheckProbability:
    def test_accepts_unit_interval(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        assert check_probability(0.3) == 0.3

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.0001)


class TestCheckWeight:
    def test_accepts_positive_weight(self):
        assert check_weight(2.5) == 2.5

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            check_weight(0.0)

    def test_rejects_weight_above_beta(self):
        with pytest.raises(ValueError):
            check_weight(11.0, beta=10.0)

    def test_accepts_weight_at_beta(self):
        assert check_weight(10.0, beta=10.0) == 10.0


class TestCheckRow:
    def test_returns_float_array(self):
        row = check_row([1, 2, 3])
        assert row.dtype == np.float64
        assert row.shape == (3,)

    def test_rejects_wrong_dimension(self):
        with pytest.raises(ValueError):
            check_row([1.0, 2.0], dimension=3)

    def test_rejects_two_dimensional_input(self):
        with pytest.raises(ValueError):
            check_row(np.ones((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_row([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_row([1.0, float("nan")])


class TestCheckMatrix:
    def test_returns_2d_array(self):
        matrix = check_matrix([[1.0, 2.0], [3.0, 4.0]])
        assert matrix.shape == (2, 2)

    def test_rejects_one_dimensional(self):
        with pytest.raises(ValueError):
            check_matrix([1.0, 2.0])

    def test_rejects_nan_entries(self):
        with pytest.raises(ValueError):
            check_matrix([[1.0, float("nan")]])

    def test_min_rows_enforced(self):
        with pytest.raises(ValueError):
            check_matrix(np.zeros((1, 3)), min_rows=2)


class TestCheckUnitVector:
    def test_accepts_unit_vector(self):
        vector = check_unit_vector([1.0, 0.0, 0.0])
        assert np.allclose(vector, [1.0, 0.0, 0.0])

    def test_rejects_non_unit_vector(self):
        with pytest.raises(ValueError):
            check_unit_vector([1.0, 1.0])

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            check_unit_vector([1.0, 0.0], dimension=3)


class TestCheckSiteCountAndRank:
    def test_site_count(self):
        assert check_site_count(50) == 50
        with pytest.raises(ValueError):
            check_site_count(0)

    def test_rank_bounds(self):
        assert check_rank(3, dimension=5) == 3
        with pytest.raises(ValueError):
            check_rank(6, dimension=5)
        with pytest.raises(ValueError):
            check_rank(0)
