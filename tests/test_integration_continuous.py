"""Integration tests: the *continuous* aspect of the tracking problem.

The paper's requirement is that the coordinator's answer is valid at *every*
time instant, not just at the end of the stream.  These tests query the
protocols at many points mid-stream (via the runner's query schedule) and
check the guarantees at each checkpoint, and they also exercise the full
pipeline (generator → partitioner → protocol → evaluation) the way the
experiment drivers do.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_matrix import make_pamap_like, row_stream
from repro.data.zipfian import ZipfianStreamGenerator
from repro.evaluation.metrics import evaluate_heavy_hitter_protocol
from repro.heavy_hitters import (
    BatchedMisraGriesProtocol,
    PrioritySamplingProtocol,
    ThresholdedUpdatesProtocol,
)
from repro.matrix_tracking import (
    BatchedFrequentDirectionsProtocol,
    DeterministicDirectionProtocol,
)
from repro.streaming.items import WeightedItem
from repro.streaming.partition import HashPartitioner, UniformRandomPartitioner
from repro.streaming.runner import run_protocol


class TestContinuousHeavyHitters:
    def test_estimates_valid_at_every_checkpoint(self, zipf_sample):
        epsilon = 0.05
        protocol = ThresholdedUpdatesProtocol(num_sites=8, epsilon=epsilon)
        items = [WeightedItem(element=e, weight=w) for e, w in zipf_sample.items]

        running_truth = {}
        running_total = [0.0]
        checkpoints = []

        def query(p):
            # Snapshot the protocol's estimate quality right now.
            worst = 0.0
            for element, truth in running_truth.items():
                worst = max(worst, abs(p.estimate(element) - truth))
            return worst, running_total[0]

        # Interleave feeding and truth accounting by wrapping the stream.
        def stream():
            for item in items:
                running_truth[item.element] = (
                    running_truth.get(item.element, 0.0) + item.weight)
                running_total[0] += item.weight
                yield item

        result = run_protocol(protocol, stream(),
                              query_at=list(range(200, len(items), 200)),
                              query=query)
        checkpoints = result.observations
        assert len(checkpoints) >= 10
        for observation in checkpoints:
            worst_error, total_at_query = observation.result
            assert worst_error <= epsilon * total_at_query + 1e-6

    def test_messages_monotone_over_time(self, zipf_sample):
        protocol = BatchedMisraGriesProtocol(num_sites=5, epsilon=0.05)
        items = [WeightedItem(element=e, weight=w) for e, w in zipf_sample.items]
        result = run_protocol(protocol, items,
                              query_at=list(range(100, len(items), 500)),
                              query=lambda p: p.total_messages)
        counts = [obs.result for obs in result.observations]
        assert counts == sorted(counts)


class TestContinuousMatrixTracking:
    def test_error_valid_at_every_checkpoint(self, low_rank_dataset):
        epsilon = 0.15
        protocol = DeterministicDirectionProtocol(
            num_sites=6, dimension=low_rank_dataset.dimension, epsilon=epsilon)
        result = run_protocol(
            protocol, row_stream(low_rank_dataset.rows),
            query_at=list(range(100, low_rank_dataset.num_rows, 150)),
            query=lambda p: p.approximation_error(),
        )
        assert len(result.observations) >= 5
        for observation in result.observations:
            assert observation.result <= epsilon + 1e-9

    def test_batched_fd_protocol_under_random_partitioning(self, low_rank_dataset):
        epsilon = 0.2
        protocol = BatchedFrequentDirectionsProtocol(
            num_sites=6, dimension=low_rank_dataset.dimension, epsilon=epsilon)
        partitioner = UniformRandomPartitioner(num_sites=6, seed=3)
        run_protocol(protocol, row_stream(low_rank_dataset.rows),
                     partitioner=partitioner)
        assert protocol.approximation_error() <= epsilon + 1e-9


class TestSkewedPartitioning:
    def test_hash_partitioning_keeps_guarantees(self, zipf_sample):
        # All copies of an element land on one site: the worst case for
        # per-site thresholds, still covered by the analysis.
        epsilon = 0.05
        protocol = ThresholdedUpdatesProtocol(num_sites=8, epsilon=epsilon)
        partitioner = HashPartitioner(num_sites=8)
        items = [WeightedItem(element=e, weight=w) for e, w in zipf_sample.items]
        run_protocol(protocol, items, partitioner=partitioner)
        evaluation = evaluate_heavy_hitter_protocol(
            protocol, zipf_sample.element_weights, phi=0.05,
            total_weight=zipf_sample.total_weight)
        assert evaluation.recall == 1.0
        budget = epsilon * zipf_sample.total_weight
        for element, truth in zipf_sample.element_weights.items():
            assert abs(protocol.estimate(element) - truth) <= budget + 1e-6

    def test_block_partitioning_matrix(self, high_rank_dataset):
        # Contiguous blocks per site (e.g. one site joins late).
        epsilon = 0.15
        protocol = DeterministicDirectionProtocol(
            num_sites=4, dimension=high_rank_dataset.dimension, epsilon=epsilon)
        rows = high_rank_dataset.rows
        quarters = np.array_split(np.arange(rows.shape[0]), 4)
        for site, indices in enumerate(quarters):
            for index in indices:
                protocol.process(site, rows[index])
        assert protocol.approximation_error() <= epsilon + 1e-9


class TestProtocolAgreement:
    def test_deterministic_and_sampling_agree_on_heavy_elements(self):
        generator = ZipfianStreamGenerator(universe_size=300, skew=2.0, beta=50.0,
                                           seed=13)
        sample = generator.generate(4_000)
        deterministic = ThresholdedUpdatesProtocol(num_sites=6, epsilon=0.02)
        sampled = PrioritySamplingProtocol(num_sites=6, epsilon=0.02,
                                           sample_size=600, seed=0)
        for index, (element, weight) in enumerate(sample.items):
            deterministic.process(index % 6, element, weight)
            sampled.process(index % 6, element, weight)
        top = set(sample.heavy_hitters(0.05))
        assert top <= set(deterministic.heavy_hitter_elements(0.05))
        assert top <= set(sampled.heavy_hitter_elements(0.05))

    def test_matrix_protocols_agree_with_exact_covariance(self, low_rank_dataset):
        protocol = DeterministicDirectionProtocol(
            num_sites=5, dimension=low_rank_dataset.dimension, epsilon=0.1)
        for index, row in enumerate(low_rank_dataset.rows):
            protocol.process(index % 5, row)
        exact = low_rank_dataset.rows.T @ low_rank_dataset.rows
        approx = protocol.covariance()
        gap = np.linalg.norm(exact - approx, 2)
        assert gap <= 0.1 * low_rank_dataset.squared_frobenius + 1e-6
        # The top eigenvector of the approximate covariance is aligned with
        # the true one (the downstream PCA use case).
        true_top = np.linalg.eigh(exact)[1][:, -1]
        approx_top = np.linalg.eigh(approx)[1][:, -1]
        assert abs(float(true_top @ approx_top)) > 0.95
