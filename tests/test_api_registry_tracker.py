"""Tests for the registry, the ``Tracker`` facade and the deprecated shims."""

from __future__ import annotations

import io

import numpy as np
import pytest

import repro
from repro.api import (
    ApproximationError,
    Covariance,
    Frequency,
    HeavyHitters,
    Norms,
    SketchMatrix,
    TotalWeight,
    available_specs,
    create,
    get_spec,
    registry_rows,
)
from repro.cli import main as cli_main
from repro.data.zipfian import ZipfianStreamGenerator
from repro.heavy_hitters import PrioritySamplingProtocol, ThresholdedUpdatesProtocol
from repro.matrix_tracking import DeterministicDirectionProtocol
from repro.streaming import WeightedItemBatch, run_many, run_protocol
from repro.streaming.partition import UniformRandomPartitioner


def small_stream(seed: int = 3, count: int = 1500) -> WeightedItemBatch:
    generator = ZipfianStreamGenerator(universe_size=200, skew=2.0, beta=50.0,
                                       seed=seed)
    return WeightedItemBatch.from_pairs(generator.generate(count).items)


class TestRegistry:
    def test_all_domains_registered(self):
        specs = available_specs()
        assert "hh/P1" in specs and "matrix/P4" in specs
        assert available_specs("hh") + available_specs("matrix") == specs

    def test_create_builds_the_registered_class(self):
        protocol = create("hh/P2", num_sites=4, epsilon=0.1)
        assert isinstance(protocol, ThresholdedUpdatesProtocol)
        assert protocol.num_sites == 4 and protocol.epsilon == 0.1

    def test_spec_names_are_case_insensitive(self):
        assert get_spec("HH/p3").name == "hh/P3"
        assert get_spec(" matrix/svd ").name == "matrix/SVD"

    def test_unqualified_name_suggests_domains(self):
        with pytest.raises(ValueError, match="hh/P3 or matrix/P3"):
            get_spec("P3")

    def test_unknown_spec_lists_available(self):
        with pytest.raises(ValueError, match="available:"):
            create("hh/P9", num_sites=3, epsilon=0.1)

    def test_missing_required_parameter(self):
        with pytest.raises(ValueError, match="requires parameter.*epsilon"):
            create("hh/P1", num_sites=3)

    def test_unknown_parameter_names_the_schema(self):
        with pytest.raises(ValueError, match="unknown parameter.*epslon"):
            create("hh/P1", num_sites=3, epslon=0.1)

    def test_p2ss_variant_fills_the_paper_site_space(self):
        protocol = create("hh/P2ss", num_sites=8, epsilon=0.1)
        plain = create("hh/P2", num_sites=8, epsilon=0.1)
        assert protocol._sites[0].sketch is not None
        assert plain._sites[0].sketch is None
        expected = ThresholdedUpdatesProtocol.default_site_space(8, 0.1)
        assert protocol._sites[0].sketch.num_counters == expected

    def test_registry_rows_cover_every_spec(self):
        rows = registry_rows()
        assert [row["spec"] for row in rows] == available_specs()
        assert all(row["class"] and row["summary"] for row in rows)

    def test_registry_equals_direct_construction(self):
        """Old-path (direct constructor) and new-path (registry) protocols
        produce identical results over the same stream."""
        batch = small_stream()
        sites = np.arange(len(batch)) % 5
        old = PrioritySamplingProtocol(num_sites=5, epsilon=0.1,
                                       sample_size=100, seed=11)
        new = create("hh/P3", num_sites=5, epsilon=0.1, sample_size=100,
                     seed=11)
        old.observe_batch(sites, batch)
        new.observe_batch(sites, batch)
        assert old.message_counts() == new.message_counts()
        assert old.estimates() == new.estimates()


class TestTracker:
    def test_push_and_push_batch_match(self):
        # One site: batch grouping cannot reorder the stream, so the two
        # ingestion paths are exactly message-equivalent.
        batch = small_stream(count=400)
        sites = np.zeros(len(batch), dtype=np.int64)
        one = repro.Tracker.create("hh/P2", num_sites=1, epsilon=0.1)
        for index in range(len(batch)):
            one.push(0, batch[index])
        many = repro.Tracker.create("hh/P2", num_sites=1, epsilon=0.1)
        many.push_batch(sites, batch)
        assert one.items_processed == many.items_processed == len(batch)
        assert one.protocol.message_counts() == many.protocol.message_counts()
        assert (one.query(TotalWeight()).estimate
                == pytest.approx(many.query(TotalWeight()).estimate))

    def test_run_in_instalments_equals_one_run(self):
        batch = small_stream()
        half = 750
        whole = repro.Tracker.create("hh/P3", num_sites=4, epsilon=0.1,
                                     sample_size=80, seed=2, chunk_size=250)
        whole.run(batch)
        split = repro.Tracker.create("hh/P3", num_sites=4, epsilon=0.1,
                                     sample_size=80, seed=2, chunk_size=250)
        split.run(batch[:half])
        split.run(batch[half:])
        assert split.total_messages == whole.total_messages
        assert split.protocol.estimates() == whole.protocol.estimates()

    def test_typed_answers_carry_bounds_and_snapshots(self):
        tracker = repro.Tracker.create("hh/P1", num_sites=4, epsilon=0.1)
        tracker.push_batch([0, 1, 2, 3], [("a", 6.0), ("b", 2.0),
                                          ("a", 4.0), ("c", 1.0)])
        answer = tracker.query(HeavyHitters(phi=0.4))
        assert answer.elements == ("a",)
        assert answer.items_processed == 4
        assert answer.total_messages == tracker.total_messages
        assert answer.error_bound == pytest.approx(
            0.1 * tracker.protocol.estimated_total_weight())
        single = tracker.query(Frequency("a"))
        assert single.estimate == pytest.approx(10.0)

    def test_matrix_queries(self):
        rows = np.random.default_rng(0).standard_normal((400, 6))
        tracker = repro.Tracker.create("matrix/P2", num_sites=3, dimension=6,
                                       epsilon=0.2)
        tracker.run(rows)
        covariance = tracker.query(Covariance())
        assert covariance.estimate.shape == (6, 6)
        assert covariance.error_bound == pytest.approx(
            0.2 * tracker.protocol.estimated_squared_frobenius())
        direction = np.eye(6)[0]
        norms = tracker.query(Norms(direction))
        assert norms.estimate == pytest.approx(
            float(direction @ covariance.estimate @ direction))
        stacked = tracker.query(Norms(np.eye(6)[:2]))
        assert stacked.estimate.shape == (2,)
        assert stacked.estimate[0] == pytest.approx(norms.estimate)
        sketch = tracker.query(SketchMatrix()).estimate
        assert sketch.shape[1] == 6
        measured = tracker.query(ApproximationError())
        assert 0.0 <= measured.estimate <= measured.error_bound + 1e-9

    def test_baseline_bounds_are_honest(self):
        """The zero-error baselines must not report the vacuous ε-bound."""
        exact = repro.Tracker.create("hh/exact", num_sites=2)
        exact.push_batch([0, 1], [("a", 3.0), ("b", 1.0)])
        assert exact.query(TotalWeight()).error_bound == 0.0

        rows = np.random.default_rng(2).standard_normal((60, 5))
        svd = repro.Tracker.create("matrix/SVD", num_sites=2, dimension=5)
        svd.run(rows)
        assert svd.query(Covariance()).error_bound == 0.0

        truncated = repro.Tracker.create("matrix/SVD", num_sites=2,
                                         dimension=5, rank=2)
        truncated.run(rows)
        answer = truncated.query(Covariance())
        exact_cov = rows.T @ rows
        spectral_error = np.linalg.norm(exact_cov - answer.estimate, ord=2)
        assert answer.error_bound == pytest.approx(spectral_error)

        fd = repro.Tracker.create("matrix/FD", num_sites=2, dimension=5,
                                  sketch_size=3)
        fd.run(rows)
        frobenius = float((rows ** 2).sum())
        assert fd.query(Covariance()).error_bound == pytest.approx(
            2.0 * frobenius / 3)

    def test_unsound_p4_has_no_error_bound(self):
        rows = np.random.default_rng(1).standard_normal((50, 4))
        tracker = repro.Tracker.create("matrix/P4", num_sites=2, dimension=4,
                                       epsilon=0.2, seed=0)
        tracker.run(rows)
        assert tracker.query(Covariance()).error_bound is None

    def test_query_domain_mismatch_raises(self):
        hh = repro.Tracker.create("hh/P1", num_sites=2, epsilon=0.1)
        with pytest.raises(TypeError, match="matrix-tracking"):
            hh.query(Covariance())
        matrix = repro.Tracker.create("matrix/P1", num_sites=2, dimension=3,
                                      epsilon=0.2)
        with pytest.raises(TypeError, match="heavy-hitter"):
            matrix.query(HeavyHitters(0.1))
        with pytest.raises(TypeError, match="Query"):
            hh.query("heavy_hitters")

    def test_stats_and_repr_show_spec_and_counters(self):
        tracker = repro.Tracker.create("hh/P3", num_sites=4, epsilon=0.1,
                                       sample_size=50, seed=1)
        tracker.push(0, ("x", 2.0))
        stats = tracker.stats()
        assert stats.spec == "hh/P3" and stats.domain == "hh"
        assert stats.items_processed == 1
        assert stats.message_counts["total_messages"] == stats.total_messages
        text = repr(tracker)
        assert "spec='hh/P3'" in text
        assert "epsilon=0.1" in text
        assert "items_processed=1" in text
        assert f"total_messages={tracker.total_messages}" in text

    def test_protocol_repr_includes_key_parameters(self):
        protocol = create("matrix/P2", num_sites=3, dimension=7, epsilon=0.25)
        text = repr(protocol)
        assert "DeterministicDirectionProtocol" in text
        assert "dimension=7" in text and "epsilon=0.25" in text
        assert "items_processed=0" in text and "total_messages=0" in text
        assert isinstance(protocol, DeterministicDirectionProtocol)

    def test_wrapping_a_foreign_protocol_infers_spec(self):
        protocol = ThresholdedUpdatesProtocol(num_sites=2, epsilon=0.1)
        tracker = repro.Tracker(protocol)
        assert tracker.spec == "hh/P2"
        assert tracker.protocol is protocol

    def test_partitioner_site_mismatch_rejected(self):
        protocol = create("hh/P1", num_sites=4, epsilon=0.1)
        with pytest.raises(ValueError, match="sites"):
            repro.Tracker(protocol, partitioner=UniformRandomPartitioner(3))


class TestAnswerSerialisation:
    def test_heavy_hitter_answer_round_trips_through_json(self):
        import json

        tracker = repro.Tracker.create("hh/P1", num_sites=3, epsilon=0.1)
        tracker.push(0, ("cat", 5.0))
        tracker.push(1, ("dog", 2.0))
        answer = tracker.query(HeavyHitters(phi=0.3))
        payload = json.loads(answer.to_json())
        assert payload["answer"] == "HeavyHittersAnswer"
        assert payload["query"] == {"type": "HeavyHitters", "phi": 0.3}
        assert payload["estimate"][0]["element"] == "cat"
        assert payload["estimate"][0]["estimated_weight"] == 5.0
        assert payload["items_processed"] == 2
        assert payload["total_messages"] == answer.total_messages
        assert payload["estimated_total_weight"] == 7.0

    def test_matrix_answers_serialise_arrays_as_lists(self):
        import json

        tracker = repro.Tracker.create("matrix/P2", num_sites=2, dimension=3,
                                       epsilon=0.5)
        tracker.push(0, np.asarray([1.0, 0.0, 0.0]))
        covariance = tracker.query(Covariance())
        payload = json.loads(covariance.to_json())
        assert payload["estimate"][0][0] == pytest.approx(1.0)
        norms = tracker.query(Norms(np.eye(3)))
        decoded = json.loads(norms.to_json())
        assert len(decoded["estimate"]) == 3
        assert isinstance(decoded["query"]["directions"], list)

    def test_unserialisable_labels_fall_back_to_repr(self):
        tracker = repro.Tracker.create("hh/P1", num_sites=2, epsilon=0.5)
        label = object()
        tracker.push(0, (label, 1.0))
        payload = tracker.query(HeavyHitters(phi=0.1)).to_dict()
        assert payload["estimate"][0]["element"] == repr(label)


class TestDeprecatedShims:
    def test_run_protocol_warns_and_matches_tracker(self):
        batch = small_stream(count=600)
        direct = repro.Tracker.create("hh/P3", num_sites=3, epsilon=0.1,
                                      sample_size=60, seed=4, chunk_size=None)
        direct.run(batch)
        legacy = create("hh/P3", num_sites=3, epsilon=0.1, sample_size=60,
                        seed=4)
        with pytest.warns(DeprecationWarning, match="Tracker"):
            result = run_protocol(legacy, batch)
        assert result.items_processed == len(batch)
        assert result.total_messages == direct.total_messages
        assert legacy.estimates() == direct.protocol.estimates()

    def test_run_many_warns_and_returns_per_protocol_results(self):
        protocols = {
            "P1": create("hh/P1", num_sites=2, epsilon=0.2),
            "P2": create("hh/P2", num_sites=2, epsilon=0.2),
        }
        with pytest.warns(DeprecationWarning, match="run_many"):
            results = run_many(protocols,
                               lambda: small_stream(count=200))
        assert set(results) == {"P1", "P2"}
        for result in results.values():
            assert result.items_processed == 200


class TestCli:
    def run_cli(self, argv):
        buffer = io.StringIO()
        code = cli_main(argv, out=buffer)
        return code, buffer.getvalue()

    def test_protocols_subcommand_prints_registry(self):
        code, output = self.run_cli(["protocols"])
        assert code == 0
        for spec in available_specs():
            assert spec in output

    def test_track_heavy_hitters_with_checkpoint(self, tmp_path):
        path = tmp_path / "cli.ckpt"
        code, output = self.run_cli([
            "track", "--protocol", "hh/P2", "--num-items", "2000",
            "--num-sites", "4", "--epsilon", "0.05", "--save", str(path),
        ])
        assert code == 0
        assert "heavy hitters" in output
        assert "answer JSON:" in output
        assert "checkpoint written" in output
        resumed = repro.Tracker.load(path)
        assert resumed.items_processed == 2000

    def test_track_sharded_session_with_cluster_checkpoint(self, tmp_path):
        path = tmp_path / "cluster.ckpt"
        code, output = self.run_cli([
            "track", "--protocol", "hh/P2", "--num-items", "2000",
            "--num-sites", "4", "--epsilon", "0.05",
            "--shards", "3", "--backend", "serial", "--save", str(path),
        ])
        assert code == 0
        assert "ShardedTracker" in output
        assert "repro.ShardedTracker.load" in output
        with repro.ShardedTracker.load(path) as resumed:
            assert resumed.num_shards == 3
            assert resumed.stats().items_processed == 2000

    def test_track_matrix_domain(self):
        code, output = self.run_cli([
            "track", "--protocol", "matrix/P3", "--num-items", "500",
            "--num-sites", "4", "--epsilon", "0.1",
        ])
        assert code == 0
        assert "covariance spectral-error bound" in output

    def test_track_rejects_unknown_spec(self):
        with pytest.raises(SystemExit):
            self.run_cli(["track", "--protocol", "nope/P1"])

    def test_bench_protocol_list_accepts_spec_names(self):
        from repro.cli import _parse_protocol_list

        assert _parse_protocol_list("hh/P1,P2") == ["P1", "P2"]
