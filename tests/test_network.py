"""Unit tests for the simulated network / message accounting."""

from __future__ import annotations

import pytest

from repro.streaming.network import (
    CommunicationLog,
    Direction,
    MessageKind,
    Network,
)


class TestCommunicationLog:
    def test_counts_by_kind_and_direction(self):
        log = CommunicationLog()
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.VECTOR, 3)
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.SCALAR, 1)
        log.record(Direction.COORDINATOR_TO_SITE, MessageKind.BROADCAST, 10)
        assert log.total_messages == 14
        assert log.upstream_messages == 4
        assert log.downstream_messages == 10
        assert log.messages_of_kind(MessageKind.VECTOR) == 3
        assert log.total_transmissions == 3

    def test_zero_units_ignored(self):
        log = CommunicationLog()
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.SCALAR, 0)
        assert log.total_messages == 0
        assert log.total_transmissions == 0

    def test_negative_units_rejected(self):
        log = CommunicationLog()
        with pytest.raises(ValueError):
            log.record(Direction.SITE_TO_COORDINATOR, MessageKind.SCALAR, -1)

    def test_records_retained_when_requested(self):
        log = CommunicationLog(keep_records=True)
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.VECTOR, 2, site=1,
                   description="rows")
        assert len(log.records) == 1
        record = log.records[0]
        assert record.site == 1
        assert record.units == 2
        assert record.description == "rows"
        assert list(iter(log)) == log.records

    def test_records_not_retained_by_default(self):
        log = CommunicationLog()
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.VECTOR, 2)
        assert log.records == []

    def test_as_dict_keys(self):
        log = CommunicationLog()
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.SCALAR, 1)
        summary = log.as_dict()
        assert summary["total_messages"] == 1
        assert summary["kind_scalar"] == 1
        assert "upstream_messages" in summary


class TestNetwork:
    def test_site_uplinks(self):
        network = Network(num_sites=4)
        network.send_scalar(0)
        network.send_vector(1, units=5)
        network.send_summary(2, units=7)
        assert network.total_messages == 13
        counts = network.message_counts()
        assert counts["kind_scalar"] == 1
        assert counts["kind_vector"] == 5
        assert counts["kind_summary"] == 7

    def test_broadcast_counts_per_site(self):
        network = Network(num_sites=6)
        network.broadcast()
        assert network.total_messages == 6
        network.broadcast(units_per_site=2)
        assert network.total_messages == 18

    def test_unicast_downstream(self):
        network = Network(num_sites=3)
        network.send_to_site(1)
        assert network.log.downstream_messages == 1

    def test_invalid_site_rejected(self):
        network = Network(num_sites=2)
        with pytest.raises(ValueError):
            network.send_scalar(2)
        with pytest.raises(ValueError):
            network.send_vector(-1)

    def test_inbox_deliver_and_drain(self):
        network = Network(num_sites=1)
        network.deliver({"payload": 1})
        network.deliver({"payload": 2})
        drained = network.drain_inbox()
        assert len(drained) == 2
        assert network.drain_inbox() == []

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Network(num_sites=0)

    def test_repr(self):
        assert "num_sites=3" in repr(Network(num_sites=3))


class TestSendBatch:
    """``send_batch`` must be indistinguishable from the per-item send loop."""

    @pytest.mark.parametrize("keep_records", [False, True])
    @pytest.mark.parametrize("kind,count,units", [
        (MessageKind.VECTOR, 5, 1),
        (MessageKind.SCALAR, 3, 1),
        (MessageKind.VECTOR, 17, 4),
    ])
    def test_matches_per_item_send_loop(self, kind, count, units, keep_records):
        looped = Network(num_sites=3, keep_records=keep_records)
        for _ in range(count):
            looped.log.record(Direction.SITE_TO_COORDINATOR, kind, units,
                              site=1, description="payload")
        batched = Network(num_sites=3, keep_records=keep_records)
        batched.send_batch(1, count, kind=kind, units_per_message=units,
                           description="payload")
        assert batched.total_messages == looped.total_messages
        assert batched.message_counts() == looped.message_counts()
        assert batched.log.records == looped.log.records

    def test_interleaves_with_single_sends(self):
        """Sequence numbers keep advancing across batched and single sends."""
        network = Network(num_sites=2, keep_records=True)
        network.send_scalar(0)
        network.send_batch(1, 3)
        network.send_scalar(0)
        sequences = [record.sequence for record in network.log.records]
        assert sequences == [1, 2, 3, 4, 5]
        assert network.log.total_transmissions == 5
        assert network.total_messages == 5

    def test_zero_count_is_noop(self):
        network = Network(num_sites=1, keep_records=True)
        network.send_batch(0, 0)
        assert network.total_messages == 0
        assert network.log.total_transmissions == 0
        assert network.log.records == []

    def test_negative_count_rejected(self):
        network = Network(num_sites=1)
        with pytest.raises(ValueError):
            network.send_batch(0, -1)
        with pytest.raises(ValueError):
            network.send_batch(0, 1, units_per_message=-2)

    def test_out_of_range_site_rejected(self):
        network = Network(num_sites=2)
        with pytest.raises(ValueError):
            network.send_batch(2, 1)
