"""Unit tests for the simulated network / message accounting."""

from __future__ import annotations

import pytest

from repro.streaming.network import (
    CommunicationLog,
    Direction,
    MessageKind,
    Network,
)


class TestCommunicationLog:
    def test_counts_by_kind_and_direction(self):
        log = CommunicationLog()
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.VECTOR, 3)
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.SCALAR, 1)
        log.record(Direction.COORDINATOR_TO_SITE, MessageKind.BROADCAST, 10)
        assert log.total_messages == 14
        assert log.upstream_messages == 4
        assert log.downstream_messages == 10
        assert log.messages_of_kind(MessageKind.VECTOR) == 3
        assert log.total_transmissions == 3

    def test_zero_units_ignored(self):
        log = CommunicationLog()
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.SCALAR, 0)
        assert log.total_messages == 0
        assert log.total_transmissions == 0

    def test_negative_units_rejected(self):
        log = CommunicationLog()
        with pytest.raises(ValueError):
            log.record(Direction.SITE_TO_COORDINATOR, MessageKind.SCALAR, -1)

    def test_records_retained_when_requested(self):
        log = CommunicationLog(keep_records=True)
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.VECTOR, 2, site=1,
                   description="rows")
        assert len(log.records) == 1
        record = log.records[0]
        assert record.site == 1
        assert record.units == 2
        assert record.description == "rows"
        assert list(iter(log)) == log.records

    def test_records_not_retained_by_default(self):
        log = CommunicationLog()
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.VECTOR, 2)
        assert log.records == []

    def test_as_dict_keys(self):
        log = CommunicationLog()
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.SCALAR, 1)
        summary = log.as_dict()
        assert summary["total_messages"] == 1
        assert summary["kind_scalar"] == 1
        assert "upstream_messages" in summary


class TestNetwork:
    def test_site_uplinks(self):
        network = Network(num_sites=4)
        network.send_scalar(0)
        network.send_vector(1, units=5)
        network.send_summary(2, units=7)
        assert network.total_messages == 13
        counts = network.message_counts()
        assert counts["kind_scalar"] == 1
        assert counts["kind_vector"] == 5
        assert counts["kind_summary"] == 7

    def test_broadcast_counts_per_site(self):
        network = Network(num_sites=6)
        network.broadcast()
        assert network.total_messages == 6
        network.broadcast(units_per_site=2)
        assert network.total_messages == 18

    def test_unicast_downstream(self):
        network = Network(num_sites=3)
        network.send_to_site(1)
        assert network.log.downstream_messages == 1

    def test_invalid_site_rejected(self):
        network = Network(num_sites=2)
        with pytest.raises(ValueError):
            network.send_scalar(2)
        with pytest.raises(ValueError):
            network.send_vector(-1)

    def test_inbox_deliver_and_drain(self):
        network = Network(num_sites=1)
        network.deliver({"payload": 1})
        network.deliver({"payload": 2})
        drained = network.drain_inbox()
        assert len(drained) == 2
        assert network.drain_inbox() == []

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Network(num_sites=0)

    def test_repr(self):
        assert "num_sites=3" in repr(Network(num_sites=3))
