"""Batch-vs-item equivalence for every sketch and every distributed protocol.

Equivalence has two strengths, matching each kernel's documented semantics:

* **Bit-identical** — the batch kernel performs the same arithmetic as
  repeated single updates (Count-Min's ``np.add.at`` accumulation, Frequent
  Directions' block appends, the default loop fallbacks).  These compare
  exact state.
* **Bound-identical** — the batch kernel aggregates duplicates first
  (Misra-Gries, SpaceSaving) or the protocol's coordination sees a
  site-grouped interleaving (randomized P3/P4 with fixed seeds), so retained
  state may differ while the summary's error guarantee holds.  These compare
  against ground truth within the guarantee, for both paths.

Protocol comparisons replay the *same site-grouped order* through the
per-item ``observe`` path that ``observe_batch`` uses internally, making the
deterministic protocols (and the seeded randomized ones, whose per-site
generators are consumed identically) exactly reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.heavy_hitters import (
    BatchedMisraGriesProtocol,
    ExactForwardingProtocol,
    PrioritySamplingProtocol,
    RandomizedReportingProtocol,
    ThresholdedUpdatesProtocol,
    WithReplacementSamplingProtocol,
)
from repro.matrix_tracking import (
    BatchedFrequentDirectionsProtocol,
    CentralizedFDBaseline,
    CentralizedSVDBaseline,
    DeterministicDirectionProtocol,
    MatrixPrioritySamplingProtocol,
    SingularDirectionUpdateProtocol,
    WithReplacementMatrixSamplingProtocol,
)
from repro.sketch import (
    CountMinSketch,
    ExactFrequencyCounter,
    ExactMatrix,
    FrequencySketch,
    FrequentDirections,
    WeightedMisraGries,
    WeightedSpaceSaving,
)
from repro.streaming.items import MatrixRowBatch, WeightedItemBatch
from repro.streaming.partition import RoundRobinPartitioner


@pytest.fixture(scope="module")
def weighted_batch(zipf_sample):
    items = zipf_sample.items[:2_000]
    return ([element for element, _ in items],
            np.asarray([weight for _, weight in items]))


@pytest.fixture(scope="module")
def truth(zipf_sample):
    items = zipf_sample.items[:2_000]
    grouped = {}
    for element, weight in items:
        grouped[element] = grouped.get(element, 0.0) + weight
    return grouped


# --------------------------------------------------------------------- sketches
class TestFrequencySketchBatchEquivalence:
    def test_count_min_bit_identical(self, weighted_batch):
        elements, weights = weighted_batch
        sequential = CountMinSketch(width=128, depth=4, seed=5)
        batched = CountMinSketch(width=128, depth=4, seed=5)
        batched._hash_a = sequential._hash_a.copy()
        batched._hash_b = sequential._hash_b.copy()
        for element, weight in zip(elements, weights):
            sequential.update(element, weight)
        batched.update_batch(elements, weights)
        assert np.array_equal(sequential._table, batched._table)
        assert batched.total_weight == pytest.approx(sequential.total_weight)
        assert set(batched.to_dict()) == set(sequential.to_dict())

    def test_exact_counter_matches(self, weighted_batch, truth):
        elements, weights = weighted_batch
        batched = ExactFrequencyCounter()
        batched.update_batch(elements, weights)
        for element, weight in truth.items():
            assert batched.estimate(element) == pytest.approx(weight)
        assert batched.total_weight == pytest.approx(sum(weights))

    def test_misra_gries_bound_identical(self, weighted_batch, truth):
        elements, weights = weighted_batch
        sequential = WeightedMisraGries(num_counters=40)
        batched = WeightedMisraGries(num_counters=40)
        for element, weight in zip(elements, weights):
            sequential.update(element, weight)
        batched.update_batch(elements, weights)
        assert batched.total_weight == pytest.approx(sequential.total_weight)
        # Both paths obey the Misra-Gries guarantee against ground truth;
        # the batched path's data-dependent bound is never looser than W/l.
        assert batched.true_error_bound() <= batched.error_bound() + 1e-9
        for sketch in (sequential, batched):
            for element, weight in truth.items():
                error = weight - sketch.estimate(element)
                assert -1e-9 <= error <= sketch.true_error_bound() + 1e-9

    def test_misra_gries_small_and_large_batches_agree_on_totals(self):
        # The dict sweep (small batches) and np.unique path (large batches)
        # must aggregate identically.
        elements = [i % 7 for i in range(512)]
        weights = np.linspace(1.0, 2.0, 512)
        small_path = WeightedMisraGries(num_counters=10)
        for start in range(0, 512, 32):  # below the np.unique cutoff
            small_path.update_batch(elements[start:start + 32],
                                    weights[start:start + 32])
        large_path = WeightedMisraGries(num_counters=10)
        large_path.update_batch(elements, weights)
        for element in range(7):
            assert small_path.estimate(element) == pytest.approx(
                large_path.estimate(element))

    def test_space_saving_bound_identical(self, weighted_batch, truth):
        elements, weights = weighted_batch
        batched = WeightedSpaceSaving(num_counters=40)
        batched.update_batch(elements, weights)
        assert batched.total_weight == pytest.approx(float(sum(weights)))
        for element, weight in truth.items():
            estimate = batched.estimate(element)
            if estimate > 0.0:  # retained: over-estimate within W/l
                assert estimate >= weight - 1e-9
                assert estimate <= weight + batched.error_bound() + 1e-9

    def test_base_class_fallback_loops_update(self):
        class LoggingSketch(FrequencySketch):
            def __init__(self):
                self.calls = []

            def update(self, element, weight=1.0):
                self.calls.append((element, weight))

            def estimate(self, element):
                return 0.0

            @property
            def total_weight(self):
                return 0.0

            def to_dict(self):
                return {}

        sketch = LoggingSketch()
        sketch.update_batch(["a", "b"], [1.0, 2.0])
        sketch.update_batch(["c"])
        assert sketch.calls == [("a", 1.0), ("b", 2.0), ("c", 1.0)]


class TestMatrixSketchBatchEquivalence:
    def test_frequent_directions_bit_identical(self, rng):
        rows = rng.standard_normal((700, 10))
        sequential = FrequentDirections(dimension=10, sketch_size=6)
        batched = FrequentDirections(dimension=10, sketch_size=6)
        for row in rows:
            sequential.update(row)
        for start in range(0, 700, 64):  # uneven blocks straddle compactions
            batched.append_batch(rows[start:start + 64])
        assert np.array_equal(sequential.sketch_matrix(), batched.sketch_matrix())
        assert batched.rows_seen == sequential.rows_seen
        assert batched.shrinkage == pytest.approx(sequential.shrinkage)
        assert batched.squared_frobenius == pytest.approx(sequential.squared_frobenius)

    def test_exact_matrix_matches(self, rng):
        rows = rng.standard_normal((300, 8))
        sequential = ExactMatrix(dimension=8)
        batched = ExactMatrix(dimension=8)
        for row in rows:
            sequential.update(row)
        batched.append_batch(rows)
        assert np.allclose(sequential.covariance(), batched.covariance())
        assert batched.rows_seen == sequential.rows_seen
        assert np.array_equal(sequential.matrix(), batched.matrix())


# -------------------------------------------------------------------- protocols
def _grouped_replay(protocol, site_ids, items, chunk: int):
    """Replay (site, item) pairs through ``observe`` in observe_batch's order."""
    site_ids = np.asarray(site_ids)
    for start in range(0, len(items), chunk):
        segment_sites = site_ids[start:start + chunk]
        order = np.argsort(segment_sites, kind="stable")
        for position in order:
            index = start + int(position)
            protocol.observe(int(site_ids[index]), items[index])


def _hh_streams(zipf_sample, num_sites: int):
    items = zipf_sample.items[:2_000]
    batch = WeightedItemBatch.from_pairs(items)
    sites = RoundRobinPartitioner(num_sites).assign_batch(
        np.arange(len(items)), batch)
    return items, batch, sites


HH_EXACT_FACTORIES = {
    "P2": lambda m: ThresholdedUpdatesProtocol(num_sites=m, epsilon=0.05),
    "P3": lambda m: PrioritySamplingProtocol(num_sites=m, epsilon=0.05,
                                             sample_size=300, seed=17),
    "P3wr": lambda m: WithReplacementSamplingProtocol(num_sites=m, epsilon=0.05,
                                                      num_samplers=50, seed=17),
    "P4": lambda m: RandomizedReportingProtocol(num_sites=m, epsilon=0.05,
                                                seed=17),
    "exact": lambda m: ExactForwardingProtocol(num_sites=m),
}


class TestHeavyHitterProtocolEquivalence:
    @pytest.mark.parametrize("name", sorted(HH_EXACT_FACTORIES))
    def test_batch_matches_grouped_item_order(self, name, zipf_sample):
        """Default process_batch protocols: bit-identical to grouped replay."""
        num_sites, chunk = 6, 512
        items, batch, sites = _hh_streams(zipf_sample, num_sites)
        reference = HH_EXACT_FACTORIES[name](num_sites)
        _grouped_replay(reference, sites, items, chunk)
        batched = HH_EXACT_FACTORIES[name](num_sites)
        for start in range(0, len(items), chunk):
            batched.observe_batch(sites[start:start + chunk],
                                  batch[start:start + chunk])
        assert batched.items_processed == reference.items_processed
        assert batched.estimated_total_weight() == pytest.approx(
            reference.estimated_total_weight())
        reference_estimates = reference.estimates()
        batched_estimates = batched.estimates()
        assert set(batched_estimates) == set(reference_estimates)
        for element, estimate in reference_estimates.items():
            assert batched_estimates[element] == pytest.approx(estimate)
        assert batched.total_messages == reference.total_messages

    def test_p1_bound_identical(self, zipf_sample):
        """P1 aggregates per segment: both paths meet the epsilon guarantee."""
        num_sites, epsilon, chunk = 6, 0.05, 512
        items, batch, sites = _hh_streams(zipf_sample, num_sites)
        truth = {}
        for element, weight in items:
            truth[element] = truth.get(element, 0.0) + weight
        total = sum(truth.values())

        reference = BatchedMisraGriesProtocol(num_sites=num_sites, epsilon=epsilon)
        _grouped_replay(reference, sites, items, chunk)
        batched = BatchedMisraGriesProtocol(num_sites=num_sites, epsilon=epsilon)
        for start in range(0, len(items), chunk):
            batched.observe_batch(sites[start:start + chunk],
                                  batch[start:start + chunk])

        assert batched.items_processed == reference.items_processed
        assert batched.observed_weight == pytest.approx(reference.observed_weight)
        budget = epsilon * total + 1e-6
        for protocol in (reference, batched):
            for element, weight in truth.items():
                assert abs(protocol.estimate(element) - weight) <= budget
        # Restricted to the prefix's own heavy hitters:
        prefix_hitters = {element for element, weight in truth.items()
                          if weight >= 0.05 * total}
        assert prefix_hitters <= set(batched.heavy_hitter_elements(0.05))
        assert prefix_hitters <= set(reference.heavy_hitter_elements(0.05))
        # Flush timing matches, so the communication traces agree closely.
        assert batched.total_messages == pytest.approx(reference.total_messages,
                                                       rel=0.05)


MATRIX_EXACT_FACTORIES = {
    "P2": lambda m, d: DeterministicDirectionProtocol(num_sites=m, dimension=d,
                                                      epsilon=0.2),
    "P3": lambda m, d: MatrixPrioritySamplingProtocol(num_sites=m, dimension=d,
                                                      epsilon=0.2,
                                                      sample_size=150, seed=23),
    "P3wr": lambda m, d: WithReplacementMatrixSamplingProtocol(
        num_sites=m, dimension=d, epsilon=0.2, num_samplers=40, seed=23),
    "P4": lambda m, d: SingularDirectionUpdateProtocol(num_sites=m, dimension=d,
                                                       epsilon=0.2, seed=23),
    "FD": lambda m, d: CentralizedFDBaseline(num_sites=m, dimension=d,
                                             sketch_size=10),
    "SVD": lambda m, d: CentralizedSVDBaseline(num_sites=m, dimension=d),
}


class TestMatrixProtocolEquivalence:
    @pytest.mark.parametrize("name", sorted(MATRIX_EXACT_FACTORIES))
    def test_batch_matches_grouped_item_order(self, name, low_rank_dataset):
        num_sites, chunk = 5, 256
        rows = low_rank_dataset.rows[:1_200]
        dimension = low_rank_dataset.dimension
        batch = MatrixRowBatch(values=rows)
        sites = RoundRobinPartitioner(num_sites).assign_batch(
            np.arange(rows.shape[0]), batch)
        reference = MATRIX_EXACT_FACTORIES[name](num_sites, dimension)
        _grouped_replay(reference, sites, list(rows), chunk)
        batched = MATRIX_EXACT_FACTORIES[name](num_sites, dimension)
        for start in range(0, rows.shape[0], chunk):
            batched.observe_batch(sites[start:start + chunk],
                                  batch[start:start + chunk])
        assert batched.items_processed == reference.items_processed
        assert batched.total_messages == reference.total_messages
        assert batched.estimated_squared_frobenius() == pytest.approx(
            reference.estimated_squared_frobenius())
        assert np.allclose(batched.sketch_matrix(), reference.sketch_matrix())
        assert np.allclose(batched.covariance(), reference.covariance())

    def test_p1_matches_grouped_item_order(self, low_rank_dataset):
        """Matrix P1's block kernel reproduces grouped per-row ingestion."""
        num_sites, chunk = 5, 256
        rows = low_rank_dataset.rows[:1_200]
        dimension = low_rank_dataset.dimension
        batch = MatrixRowBatch(values=rows)
        sites = RoundRobinPartitioner(num_sites).assign_batch(
            np.arange(rows.shape[0]), batch)
        reference = BatchedFrequentDirectionsProtocol(
            num_sites=num_sites, dimension=dimension, epsilon=0.2)
        _grouped_replay(reference, sites, list(rows), chunk)
        batched = BatchedFrequentDirectionsProtocol(
            num_sites=num_sites, dimension=dimension, epsilon=0.2)
        for start in range(0, rows.shape[0], chunk):
            batched.observe_batch(sites[start:start + chunk],
                                  batch[start:start + chunk])
        assert batched.items_processed == reference.items_processed
        assert batched.total_messages == reference.total_messages
        assert batched.estimated_squared_frobenius() == pytest.approx(
            reference.estimated_squared_frobenius())
        assert np.allclose(batched.sketch_matrix(), reference.sketch_matrix())
        assert batched.approximation_error() <= 0.2 + 1e-9


class TestObserveBatchValidation:
    def test_rejects_mismatched_site_ids(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        batch = WeightedItemBatch.from_pairs([("a", 1.0), ("b", 2.0)])
        with pytest.raises(ValueError):
            protocol.observe_batch([0], batch)

    def test_rejects_out_of_range_sites(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        batch = WeightedItemBatch.from_pairs([("a", 1.0)])
        with pytest.raises(ValueError):
            protocol.observe_batch([5], batch)

    def test_accepts_plain_item_lists(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        protocol.observe_batch([0, 1, 0], [("a", 1.0), ("b", 2.0), ("a", 3.0)])
        assert protocol.estimate("a") == pytest.approx(4.0)
        assert protocol.items_processed == 3

    def test_empty_batch_is_noop(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        protocol.observe_batch([], [])
        assert protocol.items_processed == 0
