"""Shared fixtures for the test suite.

All fixtures are intentionally small (a few thousand stream items at most) so
the entire suite runs in well under a minute; the benchmark harness under
``benchmarks/`` exercises the paper-scale configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_matrix import make_msd_like, make_pamap_like
from repro.data.zipfian import ZipfianStreamGenerator


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A session-wide deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def zipf_sample():
    """A small Zipfian weighted stream with ground truth (3,000 items)."""
    generator = ZipfianStreamGenerator(universe_size=500, skew=2.0, beta=100.0, seed=7)
    return generator.generate(3_000)


@pytest.fixture(scope="session")
def unit_weight_sample():
    """A Zipfian stream with all weights equal to one (for unweighted checks)."""
    generator = ZipfianStreamGenerator(universe_size=200, skew=2.0, beta=1.0, seed=11)
    return generator.generate(2_000)


@pytest.fixture(scope="session")
def low_rank_dataset():
    """A small PAMAP-like (low-rank) matrix dataset."""
    return make_pamap_like(num_rows=1_500, seed=3)


@pytest.fixture(scope="session")
def high_rank_dataset():
    """A small MSD-like (high-rank) matrix dataset."""
    return make_msd_like(num_rows=1_500, seed=5)


@pytest.fixture()
def small_matrix(rng) -> np.ndarray:
    """A generic dense matrix for sketch-level tests."""
    return rng.standard_normal((400, 12))
