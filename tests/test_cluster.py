"""The ``repro.cluster`` subsystem: backends, sharding, merging, checkpoints.

Correctness anchors:

* **Single-shard bit-identity** — for *every* registered protocol spec, a
  ``ShardedTracker(shards=1)`` must produce bit-identical answers and
  message accounting to a plain ``Tracker`` over the same stream (the merge
  layer degenerates to identity arithmetic).
* **Merged paper bounds** — with ``N ≥ 2`` shards, heavy-hitter estimates
  stay within the summed per-shard budget ``Σ_s ε·W_s = ε·W`` on the
  property-harness streams, every true φ-heavy hitter is still reported,
  and merged covariance errors respect the summed ``Σ_s ε·F̂_s`` bound.
* **Backend equivalence** — the ``thread``, ``process`` and ``socket``
  backends must reproduce the ``serial`` backend exactly (same shard
  trackers, same FIFO order per shard); for the multi-host ``socket``
  backend the serial == socket bit-identity is pinned for **every**
  registered spec over localhost workers.
* **Cluster checkpoint/resume** — one versioned file restores every shard
  bit-identically, under the saving backend or any other.

Streams reuse the seed-parameterized property harness
(``REPRO_PROPERTY_SEEDS``).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import (
    ApproximationError,
    CheckpointError,
    Covariance,
    Frequency,
    FrobeniusSquared,
    HeavyHitters,
    Norms,
    SketchMatrix,
    TotalWeight,
    available_backends,
    available_specs,
)
from repro.cluster import (
    BackendError,
    ShardedTracker,
    WorkerServer,
    create_backend,
    get_backend_spec,
    merge_counter_maps,
    shard_of_elements,
    shard_of_rows,
)
from repro.cluster.backends import SerialBackend
from repro.wire import register_trusted_module

from test_api_state_roundtrip import (
    CHUNK,
    HH_EPSILON,
    HH_SPECS,
    MATRIX_EPSILON,
    MATRIX_SPECS,
    _params,
)
from test_protocol_equivalence_properties import SEEDS, hh_stream, matrix_stream

BACKENDS = available_backends()

# The backend tests ship this module's own shard functions/builders through
# the wire transports; opt the test module into the codec's allowlist (the
# fork-started process workers and the embedded in-process socket workers
# both see the registration).
register_trusted_module(__name__)


@pytest.fixture(scope="module")
def worker_server():
    """One embedded localhost worker, shared by the socket-backend tests
    (every accepted connection is an independent shard session)."""
    with WorkerServer() as server:
        yield server


def _backend_options(name, worker_server):
    if name == "socket":
        return {"addresses": [worker_server.address]}
    if name == "socket-zlib":
        return {"addresses": [worker_server.address], "compress": True}
    if name == "process-zlib":
        return {"transport": "zlib"}
    return {}


def _backend_name(name):
    """Map a parametrized transport variant to its registered backend."""
    return {"process-zlib": "process", "socket-zlib": "socket"}.get(name, name)


def _plain(spec: str, seed: int, dimension=None) -> repro.Tracker:
    return repro.Tracker.create(spec, chunk_size=CHUNK,
                                **_params(spec, seed, dimension))


def _cluster(spec: str, seed: int, shards: int, dimension=None,
             backend: str = "serial", backend_options=None) -> ShardedTracker:
    return ShardedTracker.create(spec, shards=shards, backend=backend,
                                 chunk_size=CHUNK,
                                 backend_options=backend_options,
                                 **_params(spec, seed, dimension))


def _assert_same_answer(ours, theirs):
    assert type(ours) is type(theirs)
    assert np.array_equal(np.asarray(ours.estimate, dtype=object)
                          if isinstance(ours.estimate, tuple)
                          else np.asarray(ours.estimate),
                          np.asarray(theirs.estimate, dtype=object)
                          if isinstance(theirs.estimate, tuple)
                          else np.asarray(theirs.estimate))
    assert ours.error_bound == theirs.error_bound
    assert ours.items_processed == theirs.items_processed
    assert ours.total_messages == theirs.total_messages


# --------------------------------------------------------------- sharding
class TestShardAssignment:
    def test_integer_labels_are_stable_and_balanced(self):
        elements = np.arange(10_000, dtype=np.int64)
        first = shard_of_elements(elements, 4)
        second = shard_of_elements(elements, 4)
        assert np.array_equal(first, second)
        counts = np.bincount(first, minlength=4)
        assert counts.min() > 0.15 * len(elements)  # roughly balanced

    def test_string_and_tuple_labels_hash_deterministically(self):
        labels = np.empty(4, dtype=object)
        labels[:] = ["alpha", "beta", ("composite", 3), "alpha"]
        shards = shard_of_elements(labels, 3)
        assert shards[0] == shards[3]  # same label, same shard
        assert np.array_equal(shards, shard_of_elements(labels, 3))

    def test_float_labels_supported(self):
        shards = shard_of_elements(np.asarray([1.5, 2.5, 1.5]), 2)
        assert shards[0] == shards[2]

    def test_single_shard_is_all_zero(self):
        assert np.array_equal(shard_of_elements(np.arange(5), 1), np.zeros(5))

    def test_row_deal_continues_across_blocks(self):
        together = shard_of_rows(0, 10, 3)
        split = np.concatenate([shard_of_rows(0, 4, 3), shard_of_rows(4, 6, 3)])
        assert np.array_equal(together, split)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_of_elements(np.arange(3), 0)
        with pytest.raises(ValueError):
            shard_of_rows(0, 3, 0)

    def test_merge_counter_maps_sums_overlaps(self):
        merged = merge_counter_maps([{"a": 1.0, "b": 2.0}, {"b": 3.0}])
        assert merged == {"a": 1.0, "b": 5.0}


# --------------------------------------------------------------- backends
class TestBackendRegistry:
    def test_registry_contents(self):
        assert BACKENDS == ["process", "serial", "shm", "socket", "thread"]
        assert get_backend_spec("SERIAL").backend_class is SerialBackend

    def test_unknown_backend_named_in_error(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            get_backend_spec("rpc")

    @pytest.mark.parametrize("name", BACKENDS)
    def test_submit_call_fifo_and_close(self, name, worker_server):
        backend = create_backend(name, **_backend_options(name, worker_server))
        backend.launch([lambda: repro.Tracker.create(
            "hh/P1", num_sites=2, epsilon=0.5)] if name == "serial" else
            [_build_tiny_tracker])
        backend.submit(0, _push_one, "a", 2.0)
        backend.submit(0, _push_one, "b", 1.0)
        assert backend.call(0, _estimate_of, "a") == 2.0  # FIFO: pushes first
        assert backend.call_all(_estimate_of, "b") == [1.0]
        backend.close()
        backend.close()  # idempotent

    @pytest.mark.parametrize("name", ["thread", "process", "shm", "socket"])
    def test_worker_failure_surfaces_as_backend_error(self, name, worker_server):
        backend = create_backend(name, **_backend_options(name, worker_server))
        backend.launch([_build_tiny_tracker])
        backend.submit(0, _raise_worker_error)
        with pytest.raises(BackendError, match="boom"):
            backend.call(0, _estimate_of, "a")
        # The worker survives a failed submit and keeps serving.
        assert backend.call(0, _estimate_of, "missing") == 0.0
        backend.close()

    def test_process_call_all_stays_in_sync_after_an_error(self):
        """A deferred shard error must not leave unread replies behind:
        the round after a failed call_all must return that round's own
        answers, not the previous round's (regression test)."""
        backend = create_backend("process")
        backend.launch([_build_tiny_tracker, _build_tiny_tracker])
        backend.submit(0, _raise_worker_error)
        with pytest.raises(BackendError, match="boom"):
            backend.call_all(_estimate_of, "a")
        backend.submit(0, _push_one, "fresh", 3.0)
        assert backend.call_all(_estimate_of, "fresh") == [3.0, 0.0]
        backend.close()


def _build_tiny_tracker() -> repro.Tracker:
    return repro.Tracker.create("hh/P1", num_sites=2, epsilon=0.5)


def _push_one(tracker, element, weight) -> None:
    tracker.push(0, (element, weight))


def _estimate_of(tracker, element) -> float:
    return float(tracker.protocol.estimate(element))


def _raise_worker_error(tracker) -> None:
    raise RuntimeError("boom")


# ----------------------------------------- single-shard == plain tracker
class TestSingleShardBitIdentity:
    def test_every_registered_spec_is_covered(self):
        assert sorted(HH_SPECS) + sorted(MATRIX_SPECS) == available_specs()

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("spec", sorted(HH_SPECS))
    def test_hh_answers_and_accounting_identical(self, spec, seed):
        sample, batch, _ = hh_stream(seed)
        plain = _plain(spec, seed)
        plain.run(batch)
        with _cluster(spec, seed, shards=1) as cluster:
            cluster.run(batch)
            probe = max(sample.element_weights,
                        key=sample.element_weights.get)
            for query in (HeavyHitters(phi=0.06), TotalWeight(),
                          Frequency(element=probe)):
                assert cluster.query(query) == plain.query(query), query
            stats = cluster.stats()
            assert stats.items_processed == plain.items_processed
            assert stats.total_messages == plain.total_messages
            assert stats.message_counts == plain.protocol.message_counts()

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("spec", sorted(MATRIX_SPECS))
    def test_matrix_answers_and_accounting_identical(self, spec, seed):
        dataset, batch, _ = matrix_stream(seed)
        plain = _plain(spec, seed, dataset.dimension)
        plain.run(batch)
        direction = np.eye(dataset.dimension)[0]
        with _cluster(spec, seed, shards=1,
                      dimension=dataset.dimension) as cluster:
            cluster.run(batch)
            for query in (Covariance(), FrobeniusSquared(), SketchMatrix(),
                          Norms(direction), Norms(np.eye(dataset.dimension)[:3]),
                          ApproximationError()):
                _assert_same_answer(cluster.query(query), plain.query(query))
            stats = cluster.stats()
            assert stats.total_messages == plain.total_messages
            assert stats.message_counts == plain.protocol.message_counts()


# ------------------------------------------------- merged bounds, N >= 2
class TestMergedBounds:
    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("spec", ["hh/P1", "hh/P2", "hh/P2ss"])
    def test_hh_estimates_within_summed_budget(self, spec, seed, shards):
        """Per-shard guarantees of ε·W_s sum to ε·W for the whole stream."""
        sample, batch, _ = hh_stream(seed)
        with _cluster(spec, seed, shards=shards) as cluster:
            cluster.run(batch)
            budget = HH_EPSILON * sample.total_weight + 1e-9
            for element, weight in sample.element_weights.items():
                merged = cluster.query(Frequency(element=element)).estimate
                assert abs(merged - weight) <= budget, element
            answer = cluster.query(HeavyHitters(phi=0.06))
            # The reported (summed) bound is consistent with ε·Ŵ.
            assert answer.error_bound == pytest.approx(
                HH_EPSILON * answer.estimated_total_weight)
            # Lemma 1 through the merge: every true hitter is reported.
            reported = set(answer.elements)
            assert set(sample.heavy_hitters(0.06)) <= reported

    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("spec", ["matrix/P1", "matrix/P2"])
    def test_matrix_covariance_within_summed_bound(self, spec, seed, shards):
        dataset, batch, _ = matrix_stream(seed)
        with _cluster(spec, seed, shards=shards,
                      dimension=dataset.dimension) as cluster:
            cluster.run(batch)
            answer = cluster.query(Covariance())
            exact = dataset.rows.T @ dataset.rows
            error = np.linalg.norm(exact - answer.estimate, ord=2)
            assert error <= answer.error_bound + 1e-6
            # The summed bound is still the paper's ε·F̂ scale.
            fhat = cluster.query(FrobeniusSquared()).estimate
            assert answer.error_bound == pytest.approx(MATRIX_EPSILON * fhat)
            # The merged normalized error metric matches the bound scale.
            err = cluster.query(ApproximationError())
            assert err.estimate <= err.error_bound + 1e-9

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sketch_matrix_stacks_shard_sketches(self, seed):
        dataset, batch, _ = matrix_stream(seed)
        with _cluster("matrix/P1", seed, shards=3,
                      dimension=dataset.dimension) as cluster:
            cluster.run(batch)
            stacked = cluster.query(SketchMatrix()).estimate
            norms = cluster.query(Norms(np.eye(dataset.dimension)[1]))
            x = np.eye(dataset.dimension)[1]
            assert float(np.linalg.norm(stacked @ x) ** 2) == pytest.approx(
                norms.estimate)


# -------------------------------------------------- backend equivalence
class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", [
        "thread", "process", "process-zlib", "shm", "socket", "socket-zlib",
    ])
    @pytest.mark.parametrize("spec", ["hh/P2", "hh/P3", "matrix/P1"])
    def test_backend_reproduces_serial(self, spec, backend, worker_server):
        seed = SEEDS[0]
        dimension = None
        if spec.startswith("matrix/"):
            dataset, batch, _ = matrix_stream(seed)
            dimension = dataset.dimension
            queries = [Covariance(), FrobeniusSquared()]
        else:
            _, batch, _ = hh_stream(seed)
            queries = [HeavyHitters(phi=0.06), TotalWeight()]
        with _cluster(spec, seed, shards=2, dimension=dimension) as reference:
            reference.run(batch)
            reference_stats = reference.stats()
            reference_answers = [reference.query(query) for query in queries]
        with _cluster(spec, seed, shards=2, dimension=dimension,
                      backend=_backend_name(backend),
                      backend_options=_backend_options(backend, worker_server),
                      ) as cluster:
            cluster.run(batch)
            stats = cluster.stats()
            assert stats.total_messages == reference_stats.total_messages
            assert stats.message_counts == reference_stats.message_counts
            assert stats.per_shard == reference_stats.per_shard
            for query, expected in zip(queries, reference_answers):
                _assert_same_answer(cluster.query(query), expected)


# ------------------------------------------------- cluster checkpoints
class TestClusterCheckpoint:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("spec", ["hh/P2ss", "hh/P3", "matrix/P1"])
    def test_save_load_mid_stream_is_bit_identical(self, spec, seed, tmp_path):
        dimension = None
        if spec.startswith("matrix/"):
            dataset, batch, _ = matrix_stream(seed)
            dimension = dataset.dimension
            query = Covariance()
        else:
            _, batch, _ = hh_stream(seed)
            query = HeavyHitters(phi=0.06)
        half = (len(batch) // (2 * CHUNK)) * CHUNK

        with _cluster(spec, seed, shards=2, dimension=dimension) as whole:
            whole.run(batch[:half])
            whole.run(batch[half:])
            expected = whole.query(query)
            expected_stats = whole.stats()

        with _cluster(spec, seed, shards=2, dimension=dimension) as first_leg:
            first_leg.run(batch[:half])
            path = tmp_path / "cluster.ckpt"
            first_leg.save(path)

        resumed = ShardedTracker.load(path)
        with resumed:
            assert resumed.spec == spec
            assert resumed.num_shards == 2
            resumed.run(batch[half:])
            _assert_same_answer(resumed.query(query), expected)
            stats = resumed.stats()
            assert stats.total_messages == expected_stats.total_messages
            assert stats.message_counts == expected_stats.message_counts

    def test_restore_under_a_different_backend(self, tmp_path):
        seed = SEEDS[0]
        _, batch, _ = hh_stream(seed)
        with _cluster("hh/P2", seed, shards=2, backend="process") as cluster:
            cluster.run(batch)
            expected = cluster.query(TotalWeight())
            path = tmp_path / "cluster.ckpt"
            cluster.save(path)
        with ShardedTracker.load(path, backend="serial") as restored:
            assert restored.backend_name == "serial"
            assert restored.query(TotalWeight()) == expected

    def test_rejects_garbage_and_wrong_versions(self, tmp_path):
        import pickle

        from repro.cluster.sharded_tracker import CLUSTER_CHECKPOINT_VERSION

        from repro.wire import pack_frame

        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"junk")
        with pytest.raises(CheckpointError):
            ShardedTracker.load(path)
        path.write_bytes(pack_frame("repro/cluster-checkpoint",
                                    {"version": CLUSTER_CHECKPOINT_VERSION + 1}))
        with pytest.raises(CheckpointError, match="version"):
            ShardedTracker.load(path)
        # Legacy pickle cluster checkpoints are gated behind allow_pickle.
        with open(path, "wb") as handle:
            pickle.dump({"format": "repro/cluster-checkpoint",
                         "version": CLUSTER_CHECKPOINT_VERSION}, handle)
        with pytest.raises(CheckpointError, match="allow_pickle"):
            ShardedTracker.load(path)
        # A plain tracker checkpoint is not a cluster checkpoint.
        tracker = repro.Tracker.create("hh/P1", num_sites=2, epsilon=0.2)
        tracker_path = tmp_path / "tracker.ckpt"
        tracker.save(tracker_path)
        with pytest.raises(CheckpointError):
            ShardedTracker.load(tracker_path)


# ------------------------------------------------------- facade behaviour
class TestShardedTrackerFacade:
    def test_push_routes_by_element_and_push_batch_by_sites(self):
        with ShardedTracker.create("hh/P1", shards=3, num_sites=2,
                                   epsilon=0.5) as cluster:
            cluster.push(0, ("a", 2.0))
            cluster.push(1, ("a", 3.0))  # same element -> same shard
            cluster.push_batch([("a", 5.0), ("b", 1.0)], site_ids=[0, 1])
            answer = cluster.query(Frequency(element="a"))
            assert answer.estimate == pytest.approx(10.0)
            stats = cluster.stats()
            assert stats.items_processed == 4
            active = [items for items, _ in stats.per_shard if items]
            assert len(active) <= 2  # "a" never splits across shards

    def test_matrix_push_deals_rows_round_robin(self):
        rows = np.eye(4)
        with ShardedTracker.create("matrix/P1", shards=2, num_sites=2,
                                   dimension=4, epsilon=0.5) as cluster:
            cluster.push_batch(rows)
            stats = cluster.stats()
            assert [items for items, _ in stats.per_shard] == [2, 2]

    def test_query_type_validation(self):
        with ShardedTracker.create("hh/P1", shards=2, num_sites=2,
                                   epsilon=0.5) as cluster:
            with pytest.raises(TypeError, match="Covariance"):
                cluster.query(Covariance())
            with pytest.raises(TypeError, match="Query"):
                cluster.query("heavy hitters")

    def test_closed_cluster_refuses_work(self):
        cluster = ShardedTracker.create("hh/P1", shards=2, num_sites=2,
                                        epsilon=0.5)
        cluster.close()
        with pytest.raises(RuntimeError, match="closed"):
            cluster.query(TotalWeight())
        assert "closed" in repr(cluster)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            ShardedTracker.create("hh/P1", shards=0, num_sites=2, epsilon=0.5)
        with pytest.raises(ValueError, match="unknown engine backend"):
            ShardedTracker.create("hh/P1", shards=2, backend="rpc",
                                  num_sites=2, epsilon=0.5)
        with pytest.raises(ValueError, match="unknown"):
            ShardedTracker.create("hh/P1", shards=2, num_sites=2,
                                  epsilon=0.5, bogus=1)

    def test_seeded_shards_draw_distinct_streams(self):
        seed = SEEDS[0]
        _, batch, _ = hh_stream(seed)
        with _cluster("hh/P3", seed, shards=2) as cluster:
            cluster.run(batch)
            states = cluster._backend.call_all(_rng_state_of_first_site)
            assert states[0] != states[1]


def _rng_state_of_first_site(tracker):
    return tracker.protocol._site_rngs[0].bit_generator.state["state"]


# ------------------------------------------- serial == socket, all specs
class TestSocketSerialBitIdentity:
    """Acceptance anchor for the multi-host backend: over localhost workers
    the ``socket`` backend must answer bit-identically to ``serial`` for
    **every** registered protocol spec — same merged answers, same message
    accounting — with shard state travelling only as wire frames."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("spec", sorted(HH_SPECS))
    def test_hh_socket_matches_serial(self, spec, seed, worker_server):
        _, batch, _ = hh_stream(seed)
        with _cluster(spec, seed, shards=2) as reference:
            reference.run(batch)
            expected = [reference.query(query)
                        for query in (HeavyHitters(phi=0.06), TotalWeight())]
            expected_stats = reference.stats()
        with _cluster(spec, seed, shards=2, backend="socket",
                      backend_options=_backend_options("socket", worker_server),
                      ) as cluster:
            cluster.run(batch)
            for query, answer in zip((HeavyHitters(phi=0.06), TotalWeight()),
                                     expected):
                assert cluster.query(query) == answer, query
            stats = cluster.stats()
            assert stats.total_messages == expected_stats.total_messages
            assert stats.message_counts == expected_stats.message_counts
            assert stats.per_shard == expected_stats.per_shard

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("spec", sorted(MATRIX_SPECS))
    def test_matrix_socket_matches_serial(self, spec, seed, worker_server):
        dataset, batch, _ = matrix_stream(seed)
        queries = (Covariance(), FrobeniusSquared(), SketchMatrix())
        with _cluster(spec, seed, shards=2,
                      dimension=dataset.dimension) as reference:
            reference.run(batch)
            expected = [reference.query(query) for query in queries]
            expected_stats = reference.stats()
        with _cluster(spec, seed, shards=2, dimension=dataset.dimension,
                      backend="socket",
                      backend_options=_backend_options("socket", worker_server),
                      ) as cluster:
            cluster.run(batch)
            for query, answer in zip(queries, expected):
                _assert_same_answer(cluster.query(query), answer)
            stats = cluster.stats()
            assert stats.total_messages == expected_stats.total_messages
            assert stats.message_counts == expected_stats.message_counts

    def test_query_needs_no_cluster_barrier(self, worker_server):
        """Submitted-but-unflushed ingestion is visible to the very next
        query: each shard snapshots after its own FIFO queue, with no
        explicit cluster-wide flush in between."""
        seed = SEEDS[0]
        _, batch, _ = hh_stream(seed)
        with _cluster("hh/P2", seed, shards=2, backend="socket",
                      backend_options=_backend_options("socket", worker_server),
                      ) as cluster:
            cluster.push_batch(batch)  # fire-and-forget submits, no flush()
            answer = cluster.query(TotalWeight())
            assert answer.items_processed == len(batch)
        with _cluster("hh/P2", seed, shards=2) as reference:
            reference.push_batch(batch)
            assert reference.query(TotalWeight()) == answer

    def test_socket_cluster_checkpoint_restores_anywhere(self, worker_server,
                                                         tmp_path):
        """A cluster saved over sockets restores under any backend (shard
        payloads are wire frames encoded on the workers)."""
        seed = SEEDS[0]
        _, batch, _ = hh_stream(seed)
        half = (len(batch) // (2 * CHUNK)) * CHUNK
        with _cluster("hh/P3", seed, shards=2) as whole:
            whole.run(batch[:half])
            whole.run(batch[half:])
            expected = whole.query(HeavyHitters(phi=0.06))
        with _cluster("hh/P3", seed, shards=2, backend="socket",
                      backend_options=_backend_options("socket", worker_server),
                      ) as first_leg:
            first_leg.run(batch[:half])
            path = tmp_path / "socket-cluster.ckpt"
            first_leg.save(path)
        with ShardedTracker.load(path, backend="serial") as resumed:
            resumed.run(batch[half:])
            assert resumed.query(HeavyHitters(phi=0.06)) == expected

    def test_socket_backend_without_addresses_fails_with_instructions(self):
        """Every by-name entry point (create, load of a socket-saved
        checkpoint, bench) must get an actionable BackendError, never a
        raw TypeError from the constructor."""
        with pytest.raises(BackendError, match="backend_options"):
            create_backend("socket")
        with pytest.raises(BackendError, match="backend_options"):
            ShardedTracker.create("hh/P1", shards=1, backend="socket",
                                  num_sites=2, epsilon=0.5)

    def test_socket_saved_checkpoint_load_needs_backend_or_addresses(
            self, worker_server, tmp_path):
        seed = SEEDS[0]
        _, batch, _ = hh_stream(seed)
        with _cluster("hh/P1", seed, shards=2, backend="socket",
                      backend_options=_backend_options("socket", worker_server),
                      ) as cluster:
            cluster.run(batch)
            expected = cluster.query(TotalWeight())
            path = tmp_path / "socket-saved.ckpt"
            cluster.save(path)
        with pytest.raises(BackendError, match="backend_options"):
            ShardedTracker.load(path)  # addresses are not recorded
        with ShardedTracker.load(path, backend="serial") as restored:
            assert restored.query(TotalWeight()) == expected

    def test_one_worker_hosts_many_shards_and_unreachable_worker_fails_fast(
            self, worker_server):
        seed = SEEDS[0]
        _, batch, _ = hh_stream(seed)
        with _cluster("hh/P1", seed, shards=4, backend="socket",
                      backend_options=_backend_options("socket", worker_server),
                      ) as cluster:  # 4 shards on 1 worker
            cluster.run(batch)
            assert cluster.stats().items_processed == len(batch)
        with pytest.raises(BackendError, match="cannot reach worker"):
            ShardedTracker.create(
                "hh/P1", shards=1, backend="socket", num_sites=2, epsilon=0.5,
                backend_options={"addresses": "127.0.0.1:9",  # discard port
                                 "connect_timeout": 0.5})


# -------------------------------------------- worker protocol discipline
class TestWorkerProtocolDiscipline:
    """An undecodable command must not desynchronize the command/reply
    stream: a broken `submit` is held as a deferred error (no unsolicited
    reply), a broken `call` is answered with exactly one error reply, and
    the following call returns its OWN answer."""

    def _serve(self, frames):
        from repro.cluster.worker_protocol import WorkerSession

        frames = list(frames)
        replies = []
        def recv():
            if not frames:
                raise EOFError
            return frames.pop(0)
        WorkerSession(recv, replies.append).serve()
        return replies

    def test_corrupted_submit_defers_error_and_keeps_replies_aligned(self):
        from repro.cluster.worker_protocol import decode_reply, encode_command

        good_submit = encode_command("submit", _push_one, ("a", 2.0))
        corrupted = bytearray(encode_command("submit", _push_one, ("b", 1.0)))
        corrupted[-6] ^= 0x01  # flip a body bit: CRC fails, header intact
        replies = self._serve([
            encode_command("launch", None, (_build_tiny_tracker,)),
            good_submit,
            bytes(corrupted),                       # must NOT produce a reply
            encode_command("call", _estimate_of, ("a",)),   # reports the error
            encode_command("call", _estimate_of, ("a",)),   # its own answer
            encode_command("stop"),
        ])
        assert len(replies) == 3  # ready + exactly one reply per call
        assert decode_reply(replies[0])[0] == "ready"
        status, value = decode_reply(replies[1])
        assert status == "error" and "CRC" in repr(value)
        status, value = decode_reply(replies[2])
        assert status == "ok" and value == 2.0

    def test_corrupted_call_gets_exactly_one_error_reply(self):
        from repro.cluster.worker_protocol import decode_reply, encode_command

        corrupted = bytearray(encode_command("call", _estimate_of, ("a",)))
        corrupted[-6] ^= 0x01
        replies = self._serve([
            encode_command("launch", None, (_build_tiny_tracker,)),
            bytes(corrupted),
            encode_command("call", _estimate_of, ("a",)),
            encode_command("stop"),
        ])
        assert len(replies) == 3
        assert decode_reply(replies[1])[0] == "error"
        status, value = decode_reply(replies[2])
        assert status == "ok" and value == 0.0

    def test_unreadable_header_ends_the_session(self):
        from repro.cluster.worker_protocol import encode_command

        replies = self._serve([
            encode_command("launch", None, (_build_tiny_tracker,)),
            b"\x00garbage-without-a-header",
            encode_command("call", _estimate_of, ("a",)),  # never reached
        ])
        assert len(replies) == 1  # just the ready reply

    def test_malformed_reply_and_command_bodies_fail_cleanly(self):
        """A well-formed frame with a non-dict body must raise
        WireDecodeError (worker) / BackendError (parent), never a raw
        TypeError that crashes the session or skips the reply drain."""
        from repro.wire import WireDecodeError, pack_frame
        from repro.cluster.backends import _decode_reply_as_backend_errors
        from repro.cluster.worker_protocol import (
            COMMAND_KIND, REPLY_KIND, decode_command, decode_reply,
        )

        with pytest.raises(WireDecodeError, match="malformed"):
            decode_command(pack_frame(f"{COMMAND_KIND}:call", ["not", "a", "dict"]))
        with pytest.raises(WireDecodeError, match="malformed"):
            decode_reply(pack_frame(REPLY_KIND, [1, 2]))
        with pytest.raises(BackendError, match="decoded"):
            _decode_reply_as_backend_errors(pack_frame(REPLY_KIND, [1, 2]))

    def test_non_dict_command_body_follows_undecodable_discipline(self):
        """decode_command raising on a structurally wrong body routes through
        the same header-peek discipline as a corrupted frame."""
        from repro.cluster.worker_protocol import COMMAND_KIND, decode_reply, encode_command
        from repro.wire import pack_frame

        replies = self._serve([
            encode_command("launch", None, (_build_tiny_tracker,)),
            pack_frame(f"{COMMAND_KIND}:submit", "not a dict"),  # deferred
            encode_command("call", _estimate_of, ("a",)),
            encode_command("call", _estimate_of, ("a",)),
            encode_command("stop"),
        ])
        assert len(replies) == 3
        assert decode_reply(replies[1])[0] == "error"
        assert decode_reply(replies[2]) == ("ok", 0.0)


class _StubShard:
    """Scripted RemoteShardHandle for drain-discipline unit tests."""

    def __init__(self, send_fails=False):
        self.send_fails = send_fails
        self.sends = 0
        self.finishes = 0

    def send_command(self, op, fn, args):
        if self.send_fails:
            raise BackendError("send: worker is gone")
        self.sends += 1

    def recv_reply(self):
        self.finishes += 1
        return ("ok", f"round-{self.finishes}")

    def finish_call(self):
        from repro.cluster.backends import RemoteShardHandle
        return RemoteShardHandle.finish_call(self)


class TestDrainCallAllDiscipline:
    def test_send_failure_still_drains_successfully_sent_shards(self):
        """A dead shard mid-fan-out must not leave the already-sent shards
        with unread replies (which would shift every later reply back one
        round)."""
        from repro.cluster.backends import drain_call_all

        healthy, dead = _StubShard(), _StubShard(send_fails=True)
        with pytest.raises(BackendError, match="gone"):
            drain_call_all([healthy, dead], _estimate_of, ("a",))
        assert healthy.sends == 1
        assert healthy.finishes == 1  # its owed reply was drained
        # The stream stays aligned: the next round reads its OWN reply.
        results = drain_call_all([healthy], _estimate_of, ("a",))
        assert results == ["round-2"]

    def test_reply_failure_drains_the_rest(self):
        from repro.cluster.backends import drain_call_all

        class _ErrShard(_StubShard):
            def recv_reply(self):
                return ("error", RuntimeError("shard exploded"))

        tail = _StubShard()
        with pytest.raises(BackendError, match="exploded"):
            drain_call_all([_ErrShard(), tail], _estimate_of, ("a",))
        assert tail.finishes == 1


class TestSocketHandshakeCleanup:
    def test_accept_then_close_worker_does_not_leak_fds(self):
        """A worker that accepts the TCP connection but dies before the
        'ready' reply must not leak the parent-side socket fd."""
        import os
        import socket as socket_module
        import threading

        if not os.path.isdir("/proc/self/fd"):
            pytest.skip("needs /proc to count fds")

        listener = socket_module.create_server(("127.0.0.1", 0))

        def accept_and_drop():
            for _ in range(6):
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                conn.close()

        thread = threading.Thread(target=accept_and_drop, daemon=True)
        thread.start()
        address = listener.getsockname()[:2]
        before = len(os.listdir("/proc/self/fd"))
        for _ in range(5):
            with pytest.raises(BackendError):
                backend = create_backend("socket", addresses=[address])
                backend.launch([_build_tiny_tracker])
        after = len(os.listdir("/proc/self/fd"))
        listener.close()
        thread.join(timeout=5)
        assert after <= before + 1  # no accumulated leaked sockets
