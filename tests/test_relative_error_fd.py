"""Unit tests for the relative-error Frequent Directions extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.relative_error_fd import RelativeErrorFrequentDirections
from repro.utils.linalg import best_rank_k, squared_frobenius


def tail_energy(matrix: np.ndarray, rank: int) -> float:
    """Exact ``||A - A_k||_F^2``."""
    return squared_frobenius(matrix - best_rank_k(matrix, rank))


class TestRelativeErrorFrequentDirections:
    def test_sketch_size_rule(self):
        sketch = RelativeErrorFrequentDirections(dimension=20, rank=5, epsilon=0.5)
        assert sketch.sketch_size == 5 + 10
        assert sketch.rank == 5
        assert sketch.epsilon == 0.5

    def test_tail_energy_bracketed(self, rng):
        matrix = rng.standard_normal((400, 15))
        rank, epsilon = 4, 0.5
        sketch = RelativeErrorFrequentDirections(dimension=15, rank=rank,
                                                 epsilon=epsilon)
        sketch.update_many(matrix)
        exact_tail = tail_energy(matrix, rank)
        estimate = sketch.tail_energy_estimate()
        assert estimate >= exact_tail - 1e-6
        assert estimate <= (1.0 + epsilon) * exact_tail + 1e-6

    def test_projection_reconstruction_bound(self, rng):
        matrix = rng.standard_normal((300, 12))
        rank, epsilon = 3, 0.5
        sketch = RelativeErrorFrequentDirections(dimension=12, rank=rank,
                                                 epsilon=epsilon)
        sketch.update_many(matrix)
        exact_tail = tail_energy(matrix, rank)
        projected_error = sketch.reconstruction_error(matrix)
        assert projected_error <= (1.0 + epsilon) * exact_tail + 1e-6
        assert projected_error >= exact_tail - 1e-6

    def test_near_exact_on_low_rank_input(self, rng):
        basis = rng.standard_normal((3, 10))
        matrix = rng.standard_normal((500, 3)) @ basis
        sketch = RelativeErrorFrequentDirections(dimension=10, rank=3, epsilon=0.5)
        sketch.update_many(matrix)
        assert sketch.tail_energy_estimate() <= 1e-6 * squared_frobenius(matrix) + 1e-9
        assert sketch.reconstruction_error(matrix) <= 1e-6 * squared_frobenius(matrix) + 1e-9

    def test_top_k_sketch_shape(self, rng):
        matrix = rng.standard_normal((100, 8))
        sketch = RelativeErrorFrequentDirections(dimension=8, rank=2, epsilon=1.0)
        sketch.update_many(matrix)
        assert sketch.top_k_sketch().shape == (2, 8)

    def test_empty_sketch(self):
        sketch = RelativeErrorFrequentDirections(dimension=6, rank=2, epsilon=0.5)
        assert sketch.top_k_sketch().shape == (0, 6)
        assert sketch.tail_energy_estimate() == 0.0
        assert sketch.rows_seen == 0

    def test_merge(self, rng):
        matrix = rng.standard_normal((200, 10))
        left = RelativeErrorFrequentDirections(dimension=10, rank=3, epsilon=0.5)
        right = RelativeErrorFrequentDirections(dimension=10, rank=3, epsilon=0.5)
        left.update_many(matrix[:100])
        right.update_many(matrix[100:])
        merged = left.merge(right)
        exact_tail = tail_energy(matrix, 3)
        # Merging doubles the additive error budget at worst.
        assert merged.tail_energy_estimate() <= (1.0 + 2 * 0.5) * exact_tail + 1e-6
        assert merged.squared_frobenius == pytest.approx(squared_frobenius(matrix))

    def test_merge_validation(self):
        sketch = RelativeErrorFrequentDirections(dimension=6, rank=2, epsilon=0.5)
        with pytest.raises(TypeError):
            sketch.merge(object())
        with pytest.raises(ValueError):
            sketch.merge(RelativeErrorFrequentDirections(dimension=6, rank=3,
                                                         epsilon=0.5))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RelativeErrorFrequentDirections(dimension=5, rank=6, epsilon=0.5)
        with pytest.raises(ValueError):
            RelativeErrorFrequentDirections(dimension=5, rank=2, epsilon=0.0)
