"""Unit tests for repro.utils.linalg."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.linalg import (
    best_rank_k,
    covariance,
    covariance_error,
    directional_errors,
    project_onto_rowspace,
    spectral_norm,
    squared_frobenius,
    squared_norm_along,
    stack_rows,
    thin_svd,
)


class TestThinSVD:
    def test_reconstruction(self, rng):
        matrix = rng.standard_normal((20, 6))
        u, s, vt = thin_svd(matrix)
        assert np.allclose(u @ np.diag(s) @ vt, matrix, atol=1e-10)

    def test_singular_values_sorted(self, rng):
        matrix = rng.standard_normal((15, 4))
        _, s, _ = thin_svd(matrix)
        assert np.all(np.diff(s) <= 1e-12)

    def test_empty_matrix(self):
        u, s, vt = thin_svd(np.zeros((0, 5)))
        assert u.shape == (0, 0)
        assert s.shape == (0,)
        assert vt.shape == (0, 5)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            thin_svd(np.ones(3))


class TestNorms:
    def test_squared_norm_along_matches_direct(self, rng):
        matrix = rng.standard_normal((30, 5))
        x = rng.standard_normal(5)
        expected = float(np.linalg.norm(matrix @ x) ** 2)
        assert squared_norm_along(matrix, x) == pytest.approx(expected)

    def test_squared_norm_empty(self):
        assert squared_norm_along(np.zeros((0, 4)), np.ones(4)) == 0.0

    def test_squared_frobenius(self, rng):
        matrix = rng.standard_normal((10, 3))
        assert squared_frobenius(matrix) == pytest.approx(float(np.sum(matrix ** 2)))

    def test_squared_frobenius_empty(self):
        assert squared_frobenius(np.zeros((0, 3))) == 0.0

    def test_spectral_norm_diagonal(self):
        assert spectral_norm(np.diag([3.0, 1.0, 2.0])) == pytest.approx(3.0)

    def test_spectral_norm_empty(self):
        assert spectral_norm(np.zeros((0, 0))) == 0.0


class TestCovariance:
    def test_covariance_matches_definition(self, rng):
        matrix = rng.standard_normal((12, 4))
        assert np.allclose(covariance(matrix), matrix.T @ matrix)

    def test_covariance_empty(self):
        assert covariance(np.zeros((0, 4))).shape == (4, 4)


class TestCovarianceError:
    def test_zero_for_identical_matrices(self, rng):
        matrix = rng.standard_normal((25, 6))
        assert covariance_error(matrix, matrix.copy()) == pytest.approx(0.0, abs=1e-12)

    def test_matches_manual_computation(self, rng):
        a = rng.standard_normal((30, 5))
        b = rng.standard_normal((10, 5))
        expected = np.linalg.norm(a.T @ a - b.T @ b, 2) / np.sum(a ** 2)
        assert covariance_error(a, b) == pytest.approx(expected)

    def test_empty_sketch_gives_relative_spectral_norm(self, rng):
        a = rng.standard_normal((30, 5))
        expected = np.linalg.norm(a.T @ a, 2) / np.sum(a ** 2)
        assert covariance_error(a, np.zeros((0, 5))) == pytest.approx(expected)

    def test_column_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            covariance_error(rng.standard_normal((5, 3)), rng.standard_normal((5, 4)))

    def test_error_bounded_by_one_when_sketch_underestimates(self, rng):
        # Any row-subset sketch B of A satisfies ||A^T A - B^T B||_2 <= ||A||_F^2.
        a = rng.standard_normal((40, 6))
        b = a[:10]
        assert covariance_error(a, b) <= 1.0 + 1e-12


class TestRankAndProjection:
    def test_best_rank_k_exact_for_full_rank(self, rng):
        matrix = rng.standard_normal((8, 4))
        assert np.allclose(best_rank_k(matrix, 4), matrix, atol=1e-10)

    def test_best_rank_k_is_best(self, rng):
        matrix = rng.standard_normal((30, 6))
        approx = best_rank_k(matrix, 2)
        assert np.linalg.matrix_rank(approx, tol=1e-8) <= 2
        # Error equals the tail singular values.
        s = np.linalg.svd(matrix, compute_uv=False)
        expected_error = np.sqrt(np.sum(s[2:] ** 2))
        assert np.linalg.norm(matrix - approx) == pytest.approx(expected_error)

    def test_projection_onto_own_rowspace_is_identity(self, rng):
        matrix = rng.standard_normal((10, 5))
        assert np.allclose(project_onto_rowspace(matrix, matrix), matrix, atol=1e-8)

    def test_projection_onto_empty_basis_is_zero(self, rng):
        matrix = rng.standard_normal((10, 5))
        assert np.allclose(project_onto_rowspace(matrix, np.zeros((0, 5))), 0.0)

    def test_projection_reduces_norm(self, rng):
        matrix = rng.standard_normal((20, 6))
        basis = rng.standard_normal((2, 6))
        projected = project_onto_rowspace(matrix, basis)
        assert squared_frobenius(projected) <= squared_frobenius(matrix) + 1e-9


class TestStackRows:
    def test_stacks_mixed_blocks(self):
        stacked = stack_rows(np.ones((2, 3)), np.zeros((0, 3)), np.full(3, 2.0))
        assert stacked.shape == (3, 3)
        assert np.allclose(stacked[-1], 2.0)

    def test_all_empty(self):
        assert stack_rows(np.zeros((0, 3))).shape == (0, 0)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            stack_rows(np.ones((1, 3)), np.ones((1, 4)))


class TestDirectionalErrors:
    def test_zero_for_identical(self, rng):
        matrix = rng.standard_normal((15, 4))
        directions = np.eye(4)
        errors = directional_errors(matrix, matrix, directions)
        assert np.allclose(errors, 0.0, atol=1e-12)

    def test_bounded_by_covariance_error(self, rng):
        a = rng.standard_normal((40, 5))
        b = a[:25]
        overall = covariance_error(a, b)
        errors = directional_errors(a, b, np.eye(5))
        assert np.all(errors <= overall + 1e-9)
