"""The wire layer: codec fidelity, frame hardening, state round-trips.

Three layers of guarantees:

* **Codec fidelity** — every value shape the library's state graphs contain
  (arbitrary-precision ints, NaN/inf floats, NumPy arrays of any numeric
  dtype/order/shape, object arrays, NumPy scalars, bit-generator states for
  every NumPy bit generator, enums, frozen/slotted dataclass instances,
  shared references and cycles) round-trips bit-identically.
* **Decode hardening** — nothing outside the ``repro`` package (or modules
  explicitly trusted via ``register_trusted_module``) resolves; corrupted,
  truncated, version-skewed or mislabelled frames raise
  :class:`WireDecodeError`, never half-decoded values.
* **State round-trips** — for every registered protocol spec, an
  ``encode_state``/``decode_state`` round-trip mid-stream is bit-identical
  in answers, message accounting and RNG state (the in-memory form of the
  checkpoint property pinned by ``test_api_state_roundtrip``).
"""

from __future__ import annotations

import enum
import socket
import struct
import zlib

import numpy as np
import pytest

import repro
from repro.api import Covariance, FrobeniusSquared, HeavyHitters, TotalWeight
from repro.cluster.backends import BackendError
from repro.streaming.items import MatrixRowBatch, WeightedItem, WeightedItemBatch
from repro.streaming.network import CommunicationLog, Direction, MessageKind, Network
from repro.utils.stateio import restore_object
from repro.wire import (
    ARRAY_CODECS,
    WIRE_BASE_VERSION,
    WIRE_MAGIC,
    WIRE_VERSION,
    WireDecodeError,
    WireEncodeError,
    decode_state,
    decode_value,
    encode_state,
    encode_value,
    encode_with_extensions,
    is_wire_data,
    pack_frame,
    recv_frame,
    register_trusted_module,
    send_frame,
    unpack_frame,
)

from test_api_state_roundtrip import (
    HH_SPECS,
    MATRIX_SPECS,
    _params,
    _rng_states,
    _tracker,
)
from test_protocol_equivalence_properties import SEEDS, hh_stream, matrix_stream

CHUNK = 50


def roundtrip(value):
    return decode_value(encode_value(value))


# ------------------------------------------------------------ codec fidelity
class TestCodecPrimitives:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 2**62, -(2**62),
        2**64, -(2**64), 2**200 + 12345, -(2**200 + 12345),  # PCG64-size ints
        0.0, -0.0, 1.5, float("inf"), float("-inf"),
        complex(1.5, -2.5),
        "", "héllo ∑ world", "a" * 10_000,
        b"", b"\x00\xff" * 100,
    ])
    def test_scalar_roundtrip(self, value):
        result = roundtrip(value)
        assert result == value
        assert type(result) is type(value)

    def test_nan_and_negative_zero_bits_preserved(self):
        nan = struct.unpack("<d", struct.pack("<d", float("nan")))[0]
        assert struct.pack("<d", roundtrip(nan)) == struct.pack("<d", nan)
        assert str(roundtrip(-0.0)) == "-0.0"

    def test_containers_roundtrip(self):
        value = {
            "list": [1, 2.5, "x", None],
            "tuple": (1, (2, (3,))),
            "set": {1, 2, 3},
            "frozenset": frozenset({"a", "b"}),
            ("tuple", "key"): "tuple keys work",
            3: "int key",
            2.5: "float key",
            "bytes": bytearray(b"abc"),
        }
        result = roundtrip(value)
        assert result == value
        assert type(result[("tuple", "key")]) is str
        assert isinstance(result["bytes"], bytearray)

    def test_dict_insertion_order_preserved(self):
        value = {key: index for index, key in enumerate("zyxwv")}
        assert list(roundtrip(value)) == list(value)

    def test_enum_members_roundtrip_including_as_dict_keys(self):
        value = {MessageKind.SCALAR: 3, MessageKind.VECTOR: 5,
                 Direction.SITE_TO_COORDINATOR: 7}
        result = roundtrip(value)
        assert result == value
        assert type(next(iter(result))) is MessageKind

    def test_shared_references_and_cycles(self):
        shared = [1, 2, 3]
        value = {"a": shared, "b": shared}
        result = roundtrip(value)
        assert result["a"] is result["b"]
        result["a"].append(4)
        assert result["b"][-1] == 4

        cyclic = []
        cyclic.append(cyclic)
        result = roundtrip(cyclic)
        assert result[0] is result

    def test_self_referential_tuple_rejected_not_hung(self):
        hole: list = []
        value = (hole,)
        hole.append(value)
        with pytest.raises(WireEncodeError, match="self-referential"):
            encode_value(value)


class TestCodecNumpy:
    @pytest.mark.parametrize("dtype", ["float64", "float32", "int64", "int32",
                                       "uint8", "bool", "complex128"])
    def test_array_dtypes_roundtrip_bit_identically(self, dtype):
        rng = np.random.default_rng(0)
        array = (rng.standard_normal(37) * 100).astype(dtype)
        result = roundtrip(array)
        assert result.dtype == array.dtype
        assert np.array_equal(result, array)
        assert result.tobytes() == array.tobytes()

    def test_array_shapes_orders_and_writability(self):
        rng = np.random.default_rng(1)
        for array in [
            np.empty((0, 5)),
            rng.standard_normal((4, 5, 6)),
            np.asfortranarray(rng.standard_normal((6, 7))),
            rng.standard_normal((8, 9))[::2, ::3],  # non-contiguous view
            np.full((), 3.25),                      # 0-d array
        ]:
            result = roundtrip(array)
            assert result.shape == array.shape
            assert np.array_equal(result, array)
            assert result.flags.writeable and result.flags.owndata

    def test_object_arrays_with_mixed_labels(self):
        array = np.empty(4, dtype=object)
        array[:] = ["alpha", ("composite", 3), 42, 2.5]
        result = roundtrip(array)
        assert result.dtype == object
        assert list(result) == list(array)

    @pytest.mark.parametrize("scalar", [np.float64(1.5), np.int64(-7),
                                        np.uint32(9), np.bool_(True)])
    def test_numpy_scalars_keep_their_dtype(self, scalar):
        result = roundtrip(scalar)
        assert type(result) is type(scalar)
        assert result == scalar

    def test_numpy_scalar_dict_keys(self):
        value = {np.int64(3): 1.0, np.int64(5): 2.0}
        result = roundtrip(value)
        assert result == value
        assert all(type(key) is np.int64 for key in result)

    @pytest.mark.parametrize("name", ["PCG64", "MT19937", "Philox", "SFC64"])
    def test_every_bit_generator_resumes_identically(self, name):
        generator = np.random.Generator(getattr(np.random, name)(seed=42))
        generator.standard_normal(13)  # advance past the seed state
        clone = roundtrip(generator)
        # State dicts may hold arrays (MT19937 keys): compare encoded bytes.
        assert encode_value(clone.bit_generator.state) \
            == encode_value(generator.bit_generator.state)
        assert np.array_equal(clone.standard_normal(16),
                              generator.standard_normal(16))

    def test_dtype_and_scalar_type_objects(self):
        assert roundtrip(np.dtype("float32")) == np.dtype("float32")
        assert roundtrip(np.float64) is np.float64


class TestCodecObjects:
    def test_frozen_dataclass_instances(self):
        item = WeightedItem(element=("k", 1), weight=2.5, site=3)
        result = roundtrip(item)
        assert result == item and type(result) is WeightedItem

    def test_columnar_batches(self):
        batch = WeightedItemBatch.from_pairs([("a", 1.0), ("b", 2.0)],
                                             sites=[0, 1])
        result = roundtrip(batch)
        assert np.array_equal(result.elements, batch.elements)
        assert np.array_equal(result.weights, batch.weights)
        assert np.array_equal(result.sites, batch.sites)
        rows = MatrixRowBatch(values=np.eye(3))
        assert np.array_equal(roundtrip(rows).values, rows.values)

    def test_stateful_state_dict_with_class_tags(self):
        log = CommunicationLog(keep_records=True)
        log.record(Direction.SITE_TO_COORDINATOR, MessageKind.VECTOR, 2, site=1)
        state = roundtrip(log.get_state())
        assert state["cls"] is CommunicationLog
        clone = restore_object(state)
        assert clone.as_dict() == log.as_dict()
        assert clone.records == log.records

    def test_network_roundtrip(self):
        network = Network(num_sites=3, keep_records=True)
        network.send_vector(0, units=2)
        network.broadcast()
        clone = restore_object(roundtrip(network.get_state()))
        assert clone.message_counts() == network.message_counts()

    def test_exceptions_roundtrip_as_reports(self):
        builtin = roundtrip(ValueError("boom", 3))
        assert type(builtin) is ValueError and builtin.args == ("boom", 3)
        ours = roundtrip(BackendError("shard died"))
        assert type(ours) is BackendError and ours.args == ("shard died",)
        foreign = roundtrip(np.linalg.LinAlgError("singular"))
        assert isinstance(foreign, RuntimeError)
        assert "singular" in str(foreign)
        odd_args = roundtrip(ValueError(object()))
        assert isinstance(odd_args, ValueError)  # args degraded to repr


class TestDecodeHardening:
    def test_foreign_class_refused_on_encode(self):
        class Local:  # a <locals> class can never resolve remotely
            pass

        with pytest.raises(WireEncodeError):
            encode_value(Local())
        import collections
        with pytest.raises(WireEncodeError, match="only repro"):
            encode_value(collections.deque([1]))

    def test_foreign_function_refused_on_encode(self):
        import os
        with pytest.raises(WireEncodeError, match="only repro"):
            encode_value(os.system)

    def test_hostile_reference_refused_on_decode(self):
        # Hand-craft an OBJECT payload naming a non-repro class.
        from repro.wire.codec import _Encoder
        encoder = _Encoder()
        encoder.out.append(0x15)          # OBJECT tag
        encoder._str("os:environ")
        encoder._varint(0)
        with pytest.raises(WireDecodeError, match="only reference"):
            decode_value(bytes(encoder.out))

    def test_allowlist_not_bypassable_via_attribute_traversal(self):
        """`repro.api.state:pickle.loads` must NOT resolve: the walk may not
        step through a repro module into a foreign module it imported, and
        the resolved object must be *defined* in an allowed module."""
        from repro.wire.codec import resolve_qualified

        for name in ("repro.api.state:pickle.loads",
                     "repro.wire.codec:importlib.import_module",
                     "repro.api.state:warnings.warn"):
            with pytest.raises(WireDecodeError, match="refusing"):
                resolve_qualified(name)

    def test_hostile_array_shapes_raise_wire_errors_not_memoryerror(self):
        from repro.wire.codec import _Encoder

        # OBJARRAY promising 2^56 elements: must refuse, not allocate.
        encoder = _Encoder()
        encoder.out.append(0x10)          # OBJARRAY tag
        encoder._varint(1)                # ndim
        encoder._varint(2 ** 56 - 1)      # dim
        with pytest.raises(WireDecodeError, match="elements"):
            decode_value(bytes(encoder.out))
        # ARRAY whose shape product overflows int64 to 0: the Python-int
        # count check must catch it before reshape sees it.
        encoder = _Encoder()
        encoder.out.append(0x0F)          # ARRAY tag
        encoder._str("<f8")
        encoder._varint(2)                # ndim
        encoder._varint(2 ** 32)
        encoder._varint(2 ** 32)          # 2^64 elements
        encoder._varint(0)                # empty section
        with pytest.raises(WireDecodeError):
            decode_value(bytes(encoder.out))

    def test_malformed_payloads_never_leak_raw_exceptions(self):
        from repro.wire.codec import _Encoder

        # A bad enum value (ValueError inside Enum.__call__).
        encoder = _Encoder()
        encoder.out.append(0x16)          # ENUM tag
        encoder._str("repro.streaming.network:MessageKind")
        inner = encode_value("not-a-kind")
        encoder.out += inner
        with pytest.raises(WireDecodeError, match="malformed"):
            decode_value(bytes(encoder.out))
        # A bad dtype token.
        encoder = _Encoder()
        encoder.out.append(0x19)          # DTYPE tag
        encoder._str("definitely-not-a-dtype")
        with pytest.raises(WireDecodeError, match="dtype"):
            decode_value(bytes(encoder.out))

    def test_trusted_module_opt_in(self):
        register_trusted_module(__name__)
        assert roundtrip(_module_level_helper) is _module_level_helper

    def test_truncated_and_garbage_payloads(self):
        payload = encode_value({"a": [1, 2, 3]})
        with pytest.raises(WireDecodeError):
            decode_value(payload[:-2])
        with pytest.raises(WireDecodeError, match="trailing"):
            decode_value(payload + b"\x00")
        with pytest.raises(WireDecodeError, match="unknown wire tag"):
            decode_value(b"\xfe")


def _module_level_helper():  # referenced by the trusted-module test
    return "here"


# -------------------------------------------------------------- frame layer
class TestFrames:
    def test_pack_unpack_and_kind_check(self):
        frame = pack_frame("repro/test", {"x": np.arange(4)})
        assert is_wire_data(frame)
        kind, value = unpack_frame(frame)
        assert kind == "repro/test"
        assert np.array_equal(value["x"], np.arange(4))
        with pytest.raises(WireDecodeError, match="expected a 'repro/other'"):
            unpack_frame(frame, expected_kind="repro/other")

    def test_flipped_magic_rejected(self):
        frame = bytearray(pack_frame("repro/test", 1))
        frame[0] ^= 0xFF
        assert not is_wire_data(frame)
        with pytest.raises(WireDecodeError, match="not a wire frame"):
            unpack_frame(bytes(frame))

    def test_version_skew_rejected(self):
        frame = bytearray(pack_frame("repro/test", 1))
        struct.pack_into("<H", frame, 4, WIRE_VERSION + 1)
        with pytest.raises(WireDecodeError, match="version"):
            unpack_frame(bytes(frame))

    def test_bad_section_lengths_rejected(self):
        frame = bytearray(pack_frame("repro/test", [1, 2, 3]))
        # Corrupt the body-length field (right after the kind string).
        offset = 10 + len("repro/test")
        struct.pack_into("<Q", frame, offset, 10_000)
        with pytest.raises(WireDecodeError, match="length mismatch"):
            unpack_frame(bytes(frame))
        with pytest.raises(WireDecodeError, match="truncated"):
            unpack_frame(pack_frame("repro/test", [1, 2, 3])[:8])

    def test_corrupted_body_fails_crc(self):
        frame = bytearray(pack_frame("repro/test", [1, 2, 3]))
        frame[-6] ^= 0x01  # flip a bit inside the body
        with pytest.raises(WireDecodeError, match="CRC"):
            unpack_frame(bytes(frame))

    def test_array_section_length_validated(self):
        # dtype/shape promise more bytes than the section carries.
        from repro.wire.codec import _Encoder
        encoder = _Encoder()
        encoder.out.append(0x0F)          # ARRAY tag
        encoder._str("<f8")
        encoder._varint(1)                # ndim
        encoder._varint(4)                # shape (4,) -> wants 32 bytes
        encoder._varint(8)                # but section says 8
        encoder.out += b"\x00" * 8
        with pytest.raises(WireDecodeError, match="does not match"):
            decode_value(bytes(encoder.out))

    def test_stream_framing_over_a_socket(self):
        left, right = socket.socketpair()
        try:
            frame = pack_frame("repro/test", {"payload": list(range(100))})
            send_frame(left, frame)
            send_frame(left, pack_frame("repro/test", "second"))
            assert unpack_frame(recv_frame(right))[1]["payload"][-1] == 99
            assert unpack_frame(recv_frame(right))[1] == "second"
            left.close()
            with pytest.raises(EOFError):
                recv_frame(right)
        finally:
            right.close()


# ---------------------------------------- compressed wire sections (v2)
def _frame_header(frame: bytes):
    magic, version, flags, _ = struct.unpack_from("<4sHHH", frame, 0)
    assert magic == WIRE_MAGIC
    return version, flags


def _rebuild_with_body(frame: bytes, new_body: bytes) -> bytes:
    """Reassemble a frame around a replaced stored body, CRC recomputed
    (to reach the inflate path rather than the CRC check)."""
    _, _, flags, kind_length = struct.unpack_from("<4sHHH", frame, 0)
    header_end = 10 + kind_length
    return b"".join((
        frame[:header_end],
        struct.pack("<Q", len(new_body)),
        new_body,
        struct.pack("<I", zlib.crc32(new_body)),
    ))


class TestCompressedFrames:
    """Per-section compression and the v1/v2 negotiation contract."""

    def test_plain_frames_stay_version1(self):
        frame = pack_frame("repro/test", {"x": np.arange(16)})
        version, flags = _frame_header(frame)
        assert version == WIRE_BASE_VERSION
        assert flags == 0

    def test_compressed_frame_roundtrips_and_shrinks(self):
        value = {"zeros": np.zeros(4096), "labels": ["repeat"] * 500}
        plain = pack_frame("repro/test", value)
        packed = pack_frame("repro/test", value, compress=True)
        assert len(packed) < len(plain) // 2
        version, flags = _frame_header(packed)
        assert version == WIRE_VERSION
        assert flags & 0x0001
        kind, decoded = unpack_frame(packed)
        assert kind == "repro/test"
        assert np.array_equal(decoded["zeros"], value["zeros"])
        assert decoded["labels"] == value["labels"]

    def test_incompressible_body_falls_back_to_plain_v1(self):
        # Deflate cannot shrink a tiny body; the writer must not stamp v2
        # for a feature it did not use.
        frame = pack_frame("repro/test", b"\x93\x1c\x5a", compress=True)
        version, flags = _frame_header(frame)
        assert version == WIRE_BASE_VERSION
        assert flags == 0
        assert unpack_frame(frame)[1] == b"\x93\x1c\x5a"

    def test_corrupt_deflate_stream_raises_wire_error(self):
        packed = pack_frame("repro/test", {"zeros": np.zeros(4096)},
                            compress=True)
        _, _, flags, kind_length = struct.unpack_from("<4sHHH", packed, 0)
        assert flags & 0x0001
        body_start = 10 + kind_length + 8
        body = bytearray(packed[body_start:-4])
        body[1] ^= 0xFF
        with pytest.raises(WireDecodeError, match="deflated"):
            unpack_frame(_rebuild_with_body(packed, bytes(body)))

    def test_trailing_garbage_after_deflate_stream_rejected(self):
        packed = pack_frame("repro/test", {"zeros": np.zeros(4096)},
                            compress=True)
        _, _, _, kind_length = struct.unpack_from("<4sHHH", packed, 0)
        body_start = 10 + kind_length + 8
        body = packed[body_start:-4] + b"\x00\x00"
        with pytest.raises(WireDecodeError, match="truncated or oversized"):
            unpack_frame(_rebuild_with_body(packed, body))

    def test_v1_frame_with_flags_rejected(self):
        frame = bytearray(pack_frame("repro/test", 1))
        struct.pack_into("<H", frame, 6, 0x0001)  # deflate flag on a v1 frame
        with pytest.raises(WireDecodeError, match="unknown flags"):
            unpack_frame(bytes(frame))

    def test_unknown_v2_flag_rejected(self):
        frame = bytearray(pack_frame("repro/test", np.zeros(512),
                                     compress=True))
        version, flags = _frame_header(bytes(frame))
        assert version == WIRE_VERSION
        struct.pack_into("<H", frame, 6, flags | 0x8000)
        with pytest.raises(WireDecodeError, match="unknown flags"):
            unpack_frame(bytes(frame))


class TestPackedArrayCodec:
    """The ``_ARRAY_PACKED`` per-array section: zlib and float32 downcast."""

    def test_zlib_codec_is_lossless(self):
        rng = np.random.default_rng(3)
        arrays = {
            "smooth": np.repeat(np.arange(64.0), 32),
            "noisy": rng.standard_normal(100),
            "ints": np.arange(1000, dtype=np.int32),
        }
        body, extended = encode_with_extensions(arrays, array_codec="zlib")
        assert extended
        decoded = decode_value(body)
        for name, array in arrays.items():
            assert decoded[name].dtype == array.dtype
            assert np.array_equal(decoded[name], array,
                                  equal_nan=False), name

    def test_f32_codec_downcasts_float64_only(self):
        value = {"f64": np.linspace(0.0, 1.0, 33),
                 "i64": np.arange(10),
                 "f32": np.float32([1.5, 2.5])}
        decoded = decode_value(encode_value(value, array_codec="f32"))
        # Round-trip through float32: lossy for f64 at ~1e-7 relative...
        assert decoded["f64"].dtype == np.float64
        assert np.array_equal(decoded["f64"],
                              value["f64"].astype(np.float32).astype(np.float64))
        # ...and a no-op for everything that is not float64.
        assert np.array_equal(decoded["i64"], value["i64"])
        assert decoded["i64"].dtype == np.int64
        assert np.array_equal(decoded["f32"], value["f32"])

    @pytest.mark.parametrize("codec", ARRAY_CODECS)
    def test_every_codec_roundtrips_shapes_and_orders(self, codec):
        rng = np.random.default_rng(5)
        arrays = [np.zeros((0, 4)),
                  rng.standard_normal((6, 5, 4)),
                  np.asfortranarray(rng.standard_normal((8, 3)))]
        decoded = decode_value(encode_value(arrays, array_codec=codec))
        for original, copy in zip(arrays, decoded):
            assert copy.shape == original.shape
            expected = (original.astype(np.float32).astype(np.float64)
                        if "f32" in codec else original)
            assert np.array_equal(copy, expected)

    def test_unknown_codec_rejected(self):
        with pytest.raises(WireEncodeError, match="unknown array codec"):
            encode_value(np.zeros(4), array_codec="lz4")

    def test_packed_sections_only_stamp_v2_when_used(self):
        # A value with no numeric arrays uses no packed sections, so the
        # frame must stay v1 even though the codec knob was set.
        frame = pack_frame("repro/test", {"label": "x"}, array_codec="zlib")
        version, _ = _frame_header(frame)
        assert version == WIRE_BASE_VERSION

    def test_corrupt_packed_section_raises_wire_error(self):
        body, extended = encode_with_extensions(np.zeros(2048),
                                                array_codec="zlib")
        assert extended
        corrupted = bytearray(body)
        corrupted[-3] ^= 0x55  # inside the deflated payload
        with pytest.raises(WireDecodeError):
            decode_value(bytes(corrupted))


# ---------------------------------------------- per-spec state round-trips
class TestStateRoundTripEverySpec:
    """``encode_state``/``decode_state`` mid-stream is bit-identical for
    every registered spec: continued answers, message accounting and RNG
    states all match a protocol that was never encoded."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("spec", sorted(HH_SPECS))
    def test_hh_specs(self, spec, seed):
        _, batch, sites = hh_stream(seed)
        half = (len(batch) // (2 * CHUNK)) * CHUNK
        reference = _tracker(spec, seed)
        clone = _tracker(spec, seed)
        for begin in range(0, half, CHUNK):
            reference.push_batch(sites[begin:begin + CHUNK],
                                 batch[begin:begin + CHUNK])
            clone.push_batch(sites[begin:begin + CHUNK],
                             batch[begin:begin + CHUNK])
        restored = repro.Tracker(
            decode_state(encode_state(clone.protocol)),
            spec=spec, chunk_size=CHUNK,
        )
        for begin in range(half, len(batch), CHUNK):
            stop = min(begin + CHUNK, len(batch))
            reference.push_batch(sites[begin:stop], batch[begin:stop])
            restored.push_batch(sites[begin:stop], batch[begin:stop])
        assert restored.protocol.message_counts() \
            == reference.protocol.message_counts()
        assert _rng_states(restored.protocol) == _rng_states(reference.protocol)
        assert restored.query(HeavyHitters(phi=0.06)) \
            == reference.query(HeavyHitters(phi=0.06))
        assert restored.query(TotalWeight()) == reference.query(TotalWeight())

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("spec", sorted(MATRIX_SPECS))
    def test_matrix_specs(self, spec, seed):
        dataset, batch, sites = matrix_stream(seed)
        half = (len(batch) // (2 * CHUNK)) * CHUNK
        reference = _tracker(spec, seed, dataset.dimension)
        clone = _tracker(spec, seed, dataset.dimension)
        for begin in range(0, half, CHUNK):
            reference.push_batch(sites[begin:begin + CHUNK],
                                 batch[begin:begin + CHUNK])
            clone.push_batch(sites[begin:begin + CHUNK],
                             batch[begin:begin + CHUNK])
        restored = repro.Tracker(
            decode_state(encode_state(clone.protocol)),
            spec=spec, chunk_size=CHUNK,
        )
        for begin in range(half, len(batch), CHUNK):
            stop = min(begin + CHUNK, len(batch))
            reference.push_batch(sites[begin:stop], batch[begin:stop])
            restored.push_batch(sites[begin:stop], batch[begin:stop])
        assert restored.protocol.message_counts() \
            == reference.protocol.message_counts()
        assert _rng_states(restored.protocol) == _rng_states(reference.protocol)
        assert np.array_equal(restored.protocol.sketch_matrix(),
                              reference.protocol.sketch_matrix())
        assert restored.query(FrobeniusSquared()) \
            == reference.query(FrobeniusSquared())
        ours = restored.query(Covariance())
        theirs = reference.query(Covariance())
        assert np.array_equal(ours.estimate, theirs.estimate)
        assert ours.error_bound == theirs.error_bound

    def test_state_frame_kind_checked(self):
        tracker = repro.Tracker.create("hh/P1", num_sites=2, epsilon=0.5)
        frame = encode_state(tracker.protocol)
        with pytest.raises(WireDecodeError, match="expected"):
            decode_state(frame, kind="repro/other")


class TestFrameKindHardening:
    def test_invalid_utf8_kind_raises_wire_error(self):
        frame = bytearray(pack_frame("kind", 1))
        frame[10:14] = b"\xff\xfe\xfd\xfc"  # kind bytes, not UTF-8
        with pytest.raises(WireDecodeError, match="UTF-8"):
            unpack_frame(bytes(frame))

    def test_corrupt_kind_in_checkpoint_raises_checkpoint_error(self, tmp_path):
        from repro.api import CheckpointError

        tracker = repro.Tracker.create("hh/P1", num_sites=2, epsilon=0.5)
        path = tmp_path / "session.ckpt"
        tracker.save(path)
        data = bytearray(path.read_bytes())
        data[10:13] = b"\xff\xfe\xfd"
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            repro.Tracker.load(path)
