"""Unit tests for priority sampling (without and with replacement)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.priority_sampler import (
    PrioritySample,
    SampledItem,
    WithReplacementSamplers,
    sample_size_for_epsilon,
)


class TestSampleSizeRule:
    def test_monotone_in_epsilon(self):
        assert sample_size_for_epsilon(0.01) > sample_size_for_epsilon(0.1)

    def test_constant_scales(self):
        assert sample_size_for_epsilon(0.1, constant=2.0) >= sample_size_for_epsilon(0.1)

    def test_at_least_one(self):
        assert sample_size_for_epsilon(1.0) >= 1

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            sample_size_for_epsilon(0.0)


class TestSampledItem:
    def test_adjusted_weight(self):
        item = SampledItem(payload="a", weight=2.0, priority=7.0)
        assert item.adjusted_weight(1.0) == 2.0
        assert item.adjusted_weight(5.0) == 5.0


class TestPrioritySample:
    def test_exact_when_under_capacity(self):
        sampler = PrioritySample(sample_size=100, seed=0)
        for index in range(10):
            sampler.update(f"item-{index}", float(index + 1))
        assert len(sampler) == 10
        assert sampler.estimate_total_weight() == pytest.approx(55.0)
        assert sampler.estimate("item-9") == pytest.approx(10.0)

    def test_sample_size_respected(self, zipf_sample):
        sampler = PrioritySample(sample_size=50, seed=1)
        for element, weight in zipf_sample.items:
            sampler.update(element, weight)
        assert len(sampler) <= 51
        assert len(sampler) >= 50

    def test_total_weight_estimate_unbiasedish(self, zipf_sample):
        # Average over several independent samplers; the mean estimate should
        # be within a few percent of the truth.
        estimates = []
        for seed in range(8):
            sampler = PrioritySample(sample_size=200, seed=seed)
            for element, weight in zipf_sample.items:
                sampler.update(element, weight)
            estimates.append(sampler.estimate_total_weight())
        mean = float(np.mean(estimates))
        assert mean == pytest.approx(zipf_sample.total_weight, rel=0.1)

    def test_heavy_element_estimates(self, zipf_sample):
        sampler = PrioritySample(sample_size=400, seed=3)
        for element, weight in zipf_sample.items:
            sampler.update(element, weight)
        estimates = sampler.to_dict()
        for element in zipf_sample.heavy_hitters(0.05):
            truth = zipf_sample.element_weights[element]
            assert estimates.get(element, 0.0) == pytest.approx(
                truth, rel=0.35, abs=0.05 * zipf_sample.total_weight
            )

    def test_threshold_zero_when_underfull(self):
        sampler = PrioritySample(sample_size=10, seed=0)
        sampler.update("a", 1.0)
        assert sampler.threshold() == 0.0

    def test_items_seen_and_total_weight(self):
        sampler = PrioritySample(sample_size=5, seed=0)
        for index in range(20):
            sampler.update(index, 2.0)
        assert sampler.items_seen == 20
        assert sampler.total_weight == pytest.approx(40.0)

    def test_rejects_bad_weight(self):
        sampler = PrioritySample(sample_size=5, seed=0)
        with pytest.raises(ValueError):
            sampler.update("a", 0.0)

    def test_rejects_bad_sample_size(self):
        with pytest.raises(ValueError):
            PrioritySample(sample_size=0)


class TestWithReplacementSamplers:
    def test_sample_one_per_sampler(self, zipf_sample):
        samplers = WithReplacementSamplers(num_samplers=20, seed=2)
        for element, weight in zipf_sample.items[:500]:
            samplers.update(element, weight)
        assert len(samplers.sample()) == 20

    def test_total_weight_estimate(self, zipf_sample):
        estimates = []
        for seed in range(6):
            samplers = WithReplacementSamplers(num_samplers=150, seed=seed)
            for element, weight in zipf_sample.items:
                samplers.update(element, weight)
            estimates.append(samplers.estimate_total_weight())
        assert float(np.mean(estimates)) == pytest.approx(
            zipf_sample.total_weight, rel=0.15
        )

    def test_heavy_elements_sampled_frequently(self, zipf_sample):
        samplers = WithReplacementSamplers(num_samplers=200, seed=0)
        for element, weight in zipf_sample.items:
            samplers.update(element, weight)
        heaviest = max(zipf_sample.element_weights,
                       key=zipf_sample.element_weights.get)
        payloads = [item.payload for item in samplers.sample()]
        expected_share = (zipf_sample.element_weights[heaviest]
                          / zipf_sample.total_weight)
        observed_share = payloads.count(heaviest) / len(payloads)
        assert observed_share == pytest.approx(expected_share, abs=0.15)

    def test_estimate_and_to_dict_consistent(self, zipf_sample):
        samplers = WithReplacementSamplers(num_samplers=50, seed=1)
        for element, weight in zipf_sample.items[:1000]:
            samplers.update(element, weight)
        estimates = samplers.to_dict()
        for element, value in estimates.items():
            assert samplers.estimate(element) == pytest.approx(value)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            WithReplacementSamplers(num_samplers=0)

    def test_empty_estimate_total(self):
        samplers = WithReplacementSamplers(num_samplers=3, seed=0)
        assert samplers.estimate_total_weight() == 0.0
