"""Unit tests for the heavy-hitter base class behaviour and the exact baseline."""

from __future__ import annotations

import pytest

from repro.heavy_hitters.base import HeavyHitter
from repro.heavy_hitters.exact import ExactForwardingProtocol
from repro.streaming.partition import RoundRobinPartitioner


def feed(protocol, items):
    partitioner = RoundRobinPartitioner(protocol.num_sites)
    for index, (element, weight) in enumerate(items):
        protocol.process(partitioner.assign(index, element), element, weight)


class TestExactForwardingProtocol:
    def test_exact_estimates(self, zipf_sample):
        protocol = ExactForwardingProtocol(num_sites=4)
        feed(protocol, zipf_sample.items)
        for element, truth in zipf_sample.element_weights.items():
            assert protocol.estimate(element) == pytest.approx(truth)

    def test_one_message_per_item(self, zipf_sample):
        protocol = ExactForwardingProtocol(num_sites=4)
        feed(protocol, zipf_sample.items)
        assert protocol.total_messages == len(zipf_sample.items)

    def test_observed_weight_matches(self, zipf_sample):
        protocol = ExactForwardingProtocol(num_sites=4)
        feed(protocol, zipf_sample.items)
        assert protocol.observed_weight == pytest.approx(zipf_sample.total_weight)

    def test_heavy_hitters_match_truth(self, zipf_sample):
        protocol = ExactForwardingProtocol(num_sites=4)
        feed(protocol, zipf_sample.items)
        phi = 0.05
        returned = set(protocol.heavy_hitter_elements(phi))
        assert set(zipf_sample.heavy_hitters(phi)) <= returned
        # With the exact protocol and tiny epsilon, nothing far below phi is
        # returned.
        for element in returned:
            share = zipf_sample.element_weights[element] / zipf_sample.total_weight
            assert share >= phi - protocol.epsilon


class TestHeavyHitterQueryRules:
    def test_report_rule_uses_phi_minus_half_epsilon(self):
        protocol = ExactForwardingProtocol(num_sites=1, epsilon=0.2)
        protocol.process(0, "big", 40.0)
        protocol.process(0, "borderline", 42.0)
        protocol.process(0, "small", 18.0)
        # Total weight 100; phi = 0.5 -> cutoff = 0.5 - 0.1 = 0.4.
        returned = protocol.heavy_hitter_elements(0.5)
        assert "borderline" in returned
        assert "big" in returned
        assert "small" not in returned

    def test_result_objects_sorted_by_weight(self):
        protocol = ExactForwardingProtocol(num_sites=1)
        protocol.process(0, "a", 10.0)
        protocol.process(0, "b", 30.0)
        hitters = protocol.heavy_hitters(0.1)
        assert [h.element for h in hitters] == ["b", "a"]
        assert isinstance(hitters[0], HeavyHitter)
        assert hitters[0].relative_weight == pytest.approx(0.75)

    def test_empty_protocol(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        assert protocol.heavy_hitters(0.1) == []
        assert protocol.estimated_total_weight() == 0.0

    def test_invalid_phi_rejected(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        protocol.process(0, "a", 1.0)
        with pytest.raises(ValueError):
            protocol.heavy_hitters(0.0)
        with pytest.raises(ValueError):
            protocol.heavy_hitters(1.5)

    def test_invalid_site_index_rejected(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        with pytest.raises((IndexError, ValueError)):
            protocol.process(5, "a", 1.0)

    def test_invalid_weight_rejected(self):
        protocol = ExactForwardingProtocol(num_sites=2)
        with pytest.raises(ValueError):
            protocol.process(0, "a", -1.0)
