"""Properties of the pluggable FD compaction kernels (``repro.accel``).

Two families of guarantees, each checked across every ``svd_mode`` and the
seed matrix from ``REPRO_PROPERTY_SEEDS``:

* **Shrinkage certificate** — for every kernel the cumulative shrinkage
  ``Σδ`` reported by a :class:`FrequentDirections` sketch is a true
  data-dependent upper bound on the directional error
  ``‖Ax‖² − ‖Bx‖²`` (and is itself bounded by ``‖A‖²_F / ℓ``).  This is
  the invariant that lets the fast kernels replace the exact LAPACK path
  without weakening the paper's error analysis — the randomized kernel in
  particular folds its projection residual into ``δ`` to keep it true.
* **Query purity** — :meth:`FrequentDirections.compacted_view` returns
  exactly the matrix that :meth:`compact` + :meth:`sketch_matrix` would
  install, without mutating the buffer, the compaction schedule or the
  shrinkage accumulator.  Continuous queries therefore never perturb the
  stream evolution, for any kernel.

Plus the regression test for the ``thin_svd`` non-convergence fallback:
the deterministically jittered retry is a pure function of the input and
floors sub-tolerance singular values to exactly zero, so a fallback never
changes which singular values callers consider nonzero.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import SVD_MODES
from repro.sketch.frequent_directions import FrequentDirections
from repro.utils.linalg import SVD_RELATIVE_TOLERANCE, thin_svd

from test_protocol_equivalence_properties import SEEDS


def _stream(seed: int, rows: int = 300, dimension: int = 12) -> np.ndarray:
    """A row stream with decaying spectrum so compactions actually shrink."""
    rng = np.random.default_rng(seed)
    scales = np.logspace(0, -2, dimension)
    return rng.standard_normal((rows, dimension)) * scales


class TestShrinkageCertificate:
    @pytest.mark.parametrize("svd_mode", SVD_MODES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_shrinkage_bounds_directional_error(self, svd_mode, seed):
        rows = _stream(seed)
        sketch = FrequentDirections(dimension=rows.shape[1], sketch_size=5,
                                    svd_mode=svd_mode)
        sketch.update_many(rows)

        # Install the final compaction so the reported Σδ covers exactly the
        # shrinks that produced the matrix we query below (compacted_view's
        # extra shrink is deliberately not folded into the accumulator).
        sketch.compact()

        frobenius = float(np.sum(rows ** 2))
        tolerance = 1e-6 * max(1.0, frobenius)
        # The data-dependent certificate is itself within the worst case.
        assert 0.0 <= sketch.shrinkage <= frobenius / sketch.sketch_size + tolerance

        b = sketch.sketch_matrix()
        directions = np.vstack([np.eye(rows.shape[1]),
                                np.random.default_rng(seed + 1)
                                .standard_normal((20, rows.shape[1]))])
        for x in directions:
            x = x / np.linalg.norm(x)
            true = float(np.linalg.norm(rows @ x) ** 2)
            approx = float(np.linalg.norm(b @ x) ** 2)
            assert true - approx >= -tolerance
            assert true - approx <= sketch.shrinkage + tolerance

    @pytest.mark.parametrize("svd_mode", SVD_MODES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_keeps_certificate(self, svd_mode, seed):
        rows = _stream(seed, rows=240)
        cut = rows.shape[0] // 2
        left = FrequentDirections(dimension=rows.shape[1], sketch_size=5,
                                  svd_mode=svd_mode)
        right = FrequentDirections(dimension=rows.shape[1], sketch_size=5,
                                   svd_mode=svd_mode)
        left.update_many(rows[:cut])
        right.update_many(rows[cut:])
        merged = left.merge(right)

        merged.compact()
        frobenius = float(np.sum(rows ** 2))
        tolerance = 1e-6 * max(1.0, frobenius)
        b = merged.sketch_matrix()
        rng = np.random.default_rng(seed + 2)
        for _ in range(10):
            x = rng.standard_normal(rows.shape[1])
            x = x / np.linalg.norm(x)
            true = float(np.linalg.norm(rows @ x) ** 2)
            approx = float(np.linalg.norm(b @ x) ** 2)
            assert true - approx >= -tolerance
            assert true - approx <= merged.shrinkage + tolerance


class TestCompactedViewPurity:
    @pytest.mark.parametrize("svd_mode", SVD_MODES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_view_matches_installed_compaction(self, svd_mode, seed):
        rows = _stream(seed)
        sketch = FrequentDirections(dimension=rows.shape[1], sketch_size=5,
                                    svd_mode=svd_mode)
        sketch.update_many(rows)

        before = (sketch.sketch_matrix(), sketch.shrinkage, sketch.rows_seen,
                  sketch.squared_frobenius)

        view = sketch.compacted_view()

        # The view did not perturb the sketch ...
        assert np.array_equal(sketch.sketch_matrix(), before[0])
        assert sketch.shrinkage == before[1]
        assert sketch.rows_seen == before[2]
        assert sketch.squared_frobenius == before[3]

        # ... and it is bit-identical to what compact() would install.
        installed = sketch.copy()
        installed.compact()
        assert np.array_equal(view, installed.sketch_matrix())

    @pytest.mark.parametrize("svd_mode", SVD_MODES)
    def test_view_below_capacity_is_plain_copy(self, svd_mode):
        sketch = FrequentDirections(dimension=4, sketch_size=3,
                                    svd_mode=svd_mode)
        rows = np.arange(8.0).reshape(2, 4)
        sketch.update_many(rows)
        assert np.array_equal(sketch.compacted_view(), rows)
        assert sketch.shrinkage == 0.0


class TestThinSvdFallback:
    """Regression: the LinAlgError jitter fallback is deterministic and
    respects the documented :data:`SVD_RELATIVE_TOLERANCE` contract."""

    @staticmethod
    def _failing_once(monkeypatch):
        real_svd = np.linalg.svd
        calls = {"failed": 0}

        def flaky(matrix, *args, **kwargs):
            if calls["failed"] == 0:
                calls["failed"] += 1
                raise np.linalg.LinAlgError("SVD did not converge")
            return real_svd(matrix, *args, **kwargs)

        monkeypatch.setattr(np.linalg, "svd", flaky)
        return calls

    def test_fallback_is_deterministic(self, monkeypatch):
        rng = np.random.default_rng(11)
        matrix = rng.standard_normal((6, 4))

        calls = self._failing_once(monkeypatch)
        u1, s1, vt1 = thin_svd(matrix)
        assert calls["failed"] == 1

        calls["failed"] = 0
        u2, s2, vt2 = thin_svd(matrix)
        assert np.array_equal(u1, u2)
        assert np.array_equal(s1, s2)
        assert np.array_equal(vt1, vt2)

    def test_fallback_reconstructs_within_tolerance(self, monkeypatch):
        rng = np.random.default_rng(12)
        matrix = rng.standard_normal((8, 5))
        self._failing_once(monkeypatch)
        u, s, vt = thin_svd(matrix)
        reconstructed = (u * s) @ vt
        scale = float(np.abs(matrix).max())
        # The jitter is scaled to max|A| · SVD_RELATIVE_TOLERANCE, so the
        # reconstruction can drift by at most a small multiple of that.
        assert np.max(np.abs(reconstructed - matrix)) <= \
            100 * scale * SVD_RELATIVE_TOLERANCE

    def test_fallback_floors_subtolerance_singular_values(self, monkeypatch):
        # A rank-1 matrix: the jittered copy would otherwise report tiny
        # nonzero trailing singular values, silently promoting rank.
        outer = np.outer(np.arange(1.0, 7.0), np.arange(1.0, 5.0))
        self._failing_once(monkeypatch)
        _, s, _ = thin_svd(outer)
        cutoff = max(float(s[0]), 1.0) * SVD_RELATIVE_TOLERANCE
        tail = s[s <= cutoff]
        assert tail.size == s.size - 1
        assert np.all(tail == 0.0)

    def test_zero_matrix_fallback_stays_below_tolerance(self, monkeypatch):
        # The jitter scale for an all-zero input is SVD_RELATIVE_TOLERANCE
        # itself — the fallback never fabricates above-tolerance energy.
        matrix = np.zeros((4, 3))
        self._failing_once(monkeypatch)
        _, s, _ = thin_svd(matrix)
        assert np.all(s <= 100 * SVD_RELATIVE_TOLERANCE)
