"""Epoch-guarded answer caching: identity, invalidation and freshness.

The hot-path contract of PR 10: a cached answer is the *same frozen
object* a fresh evaluation would return, every ingestion/restore/handoff
invalidates by construction (the epoch in the key moves, the entries are
never touched), and a query issued after an acknowledged push can never
observe pre-push state.  Covered here:

* :class:`~repro.api.cache.AnswerCache` unit behaviour (LRU, TTL,
  disabled mode, pickling as configuration);
* ``ingest_epoch`` plumbing on :class:`~repro.api.Tracker` and
  :class:`~repro.cluster.ShardedTracker` (push/batch/run/restore bumps);
* bit-identity of cached answers for **every** registered spec
  (seed-parameterized like the state round-trip suite);
* a concurrent push/query stress test asserting the freshness watermark;
* invalidation on ``move_shard`` (placement generation) and checkpoint
  restore;
* the degraded ``stats()`` surface (``missing_shards`` instead of a
  hard failure).
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

import repro
from repro.api import (
    Covariance,
    FrobeniusSquared,
    HeavyHitters,
    Norms,
    TotalWeight,
)
from repro.api.cache import AnswerCache
from repro.cluster.backends import BackendError
from repro.cluster.socket_backend import WorkerServer
from repro.streaming.items import WeightedItemBatch

from test_api_state_roundtrip import (
    HH_SPECS,
    MATRIX_SPECS,
    _params,
)
from test_protocol_equivalence_properties import (
    SEEDS,
    hh_stream,
    matrix_stream,
)

CHUNK = 50


# --------------------------------------------------------------------------
# AnswerCache unit behaviour.
# --------------------------------------------------------------------------
class TestAnswerCacheUnit:
    def test_lru_eviction_and_counters(self):
        cache = AnswerCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refreshes a's LRU slot
        cache.put("c", 3)                   # evicts b, the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.hits == 3
        assert cache.misses == 1

    def test_ttl_expiry_counts_as_eviction_and_miss(self, monkeypatch):
        clock = [100.0]
        monkeypatch.setattr("repro.api.cache.monotonic", lambda: clock[0])
        cache = AnswerCache(max_entries=4, ttl=5.0)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        clock[0] += 6.0
        assert cache.get("k") is None
        assert cache.evictions == 1
        assert cache.misses == 1

    def test_disabled_cache_stores_nothing(self):
        cache = AnswerCache(max_entries=0)
        assert not cache.enabled
        cache.put("k", "v")
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AnswerCache(max_entries=-1)
        with pytest.raises(ValueError):
            AnswerCache(ttl=0.0)

    def test_pickles_as_configuration_only(self):
        cache = AnswerCache(max_entries=7, ttl=3.0, spec="hh/P2")
        cache.put("k", "v")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.max_entries == 7
        assert clone.ttl == 3.0
        assert clone.get("k") is None       # entries are process-local
        assert len(clone) == 0


# --------------------------------------------------------------------------
# Epoch plumbing on the tracker facades.
# --------------------------------------------------------------------------
class TestIngestEpoch:
    def test_tracker_epoch_bumps_on_every_ingest_form(self):
        tracker = repro.Tracker.create("hh/exact", num_sites=3)
        assert tracker.ingest_epoch == 0
        tracker.push(0, ("a", 2.0))
        assert tracker.ingest_epoch == 1
        tracker.push_batch([0, 1], WeightedItemBatch.from_pairs(
            [("b", 1.0), ("c", 1.0)]))
        assert tracker.ingest_epoch == 2
        tracker.run(WeightedItemBatch.from_pairs([("d", 1.0)]))
        assert tracker.ingest_epoch == 3
        assert tracker.stats().ingest_epoch == 3

    def test_sharded_epoch_bumps_and_lands_in_stats(self):
        with repro.ShardedTracker.create("hh/exact", shards=2,
                                         backend="thread",
                                         num_sites=4) as cluster:
            assert cluster.ingest_epoch == 0
            cluster.push(0, ("a", 2.0))
            assert cluster.ingest_epoch == 1
            cluster.push_batch(WeightedItemBatch.from_pairs(
                [("b", 1.0), ("c", 1.0)]))
            assert cluster.ingest_epoch == 2
            assert cluster.stats().ingest_epoch == 2

    def test_cached_hit_is_the_same_frozen_object(self):
        tracker = repro.Tracker.create("hh/exact", num_sites=2)
        tracker.run(WeightedItemBatch.from_pairs([("a", 5.0), ("b", 1.0)]))
        first = tracker.query(TotalWeight())
        second = tracker.query(TotalWeight())
        assert second is first
        assert tracker.answer_cache.hits == 1
        third = tracker.query(HeavyHitters(phi=0.1))
        assert tracker.query(HeavyHitters(phi=0.1)) is third

    def test_push_invalidates_by_construction(self):
        tracker = repro.Tracker.create("hh/exact", num_sites=2)
        tracker.run(WeightedItemBatch.from_pairs([("a", 5.0)]))
        stale = tracker.query(TotalWeight())
        assert stale.estimate == pytest.approx(5.0)
        tracker.push(0, ("b", 3.0))
        fresh = tracker.query(TotalWeight())
        assert fresh is not stale
        assert fresh.estimate == pytest.approx(8.0)

    def test_cache_size_zero_disables_memoization(self):
        tracker = repro.Tracker.create("hh/exact", num_sites=2, cache_size=0)
        tracker.run(WeightedItemBatch.from_pairs([("a", 5.0)]))
        first = tracker.query(TotalWeight())
        second = tracker.query(TotalWeight())
        assert first is not second
        assert first == second

    def test_restore_seeds_a_fresh_epoch(self, tmp_path):
        tracker = repro.Tracker.create("hh/exact", num_sites=2)
        tracker.run(WeightedItemBatch.from_pairs(
            [("a", 1.0), ("b", 1.0), ("c", 1.0)]))
        path = tmp_path / "tracker.ckpt"
        tracker.save(path)
        loaded = repro.Tracker.load(path)
        # Seeded from items_processed: a restored session can never reuse
        # epoch values an earlier cached answer was keyed under.
        assert loaded.ingest_epoch == 3
        assert loaded.query(TotalWeight()) == tracker.query(TotalWeight())

    def test_sharded_restore_bumps_past_the_saved_epoch(self, tmp_path):
        path = tmp_path / "cluster.ckpt"
        with repro.ShardedTracker.create("hh/exact", shards=2,
                                         backend="thread",
                                         num_sites=4) as cluster:
            cluster.push_batch(WeightedItemBatch.from_pairs(
                [("a", 1.0), ("b", 2.0)]))
            saved_epoch = cluster.ingest_epoch
            cluster.save(path)
            expected = cluster.query(TotalWeight())
        with repro.ShardedTracker.load(path, backend="thread") as loaded:
            assert loaded.ingest_epoch == saved_epoch + 1
            assert loaded.query(TotalWeight()) == expected


# --------------------------------------------------------------------------
# Bit-identity of cached answers for every registered spec.
# --------------------------------------------------------------------------
def _identity_queries(spec, dimension):
    if spec in HH_SPECS:
        return [HeavyHitters(phi=0.06), TotalWeight()]
    probe = np.zeros(dimension, dtype=np.float64)
    probe[0] = 1.0
    return [Covariance(), FrobeniusSquared(), Norms(directions=probe)]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("spec", sorted(HH_SPECS) + sorted(MATRIX_SPECS))
def test_cached_answers_bit_identical_to_fresh_fanout(spec, seed):
    """For every spec: a cache hit is the frozen answer an uncached
    fan-out produces, bit for bit."""
    if spec in HH_SPECS:
        _sample, batch, sites = hh_stream(seed)
        dimension = None
    else:
        dataset, batch, sites = matrix_stream(seed)
        dimension = dataset.dimension
    params = _params(spec, seed, dimension)
    site_ids = [int(site) for site in sites]

    cached = repro.ShardedTracker.create(spec, shards=2, backend="thread",
                                         chunk_size=CHUNK, **params)
    uncached = repro.ShardedTracker.create(spec, shards=2, backend="thread",
                                           chunk_size=CHUNK, cache_size=0,
                                           **params)
    try:
        for cluster in (cached, uncached):
            cluster.push_batch(batch, site_ids=site_ids)
            cluster.flush()
        for query in _identity_queries(spec, dimension):
            fresh = uncached.query(query)
            first = cached.query(query)
            hit = cached.query(query)
            assert hit is first                      # same frozen object
            assert hit.to_json() == fresh.to_json()  # bit-identical payload
    finally:
        cached.close()
        uncached.close()


# --------------------------------------------------------------------------
# Concurrency: a post-push query never observes pre-push state.
# --------------------------------------------------------------------------
def test_concurrent_push_query_serves_no_stale_answer():
    """Readers racing a writer: every answer's total weight must cover at
    least every push acknowledged before the query was issued."""
    with repro.ShardedTracker.create("hh/exact", shards=2, backend="thread",
                                     num_sites=4) as cluster:
        acknowledged = [0.0]    # total weight of completed pushes
        stop = threading.Event()
        violations = []
        failures = []

        def writer():
            try:
                for round_ in range(200):
                    cluster.push_batch(WeightedItemBatch.from_pairs(
                        [(round_ % 17, 1.0), (round_ % 5, 1.0)]))
                    acknowledged[0] += 2.0
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    watermark = acknowledged[0]
                    answer = cluster.query(TotalWeight())
                    if answer.estimate < watermark - 1e-9:
                        violations.append((watermark, answer.estimate))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failures.append(exc)

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        assert violations == []
        assert cluster.query(TotalWeight()).estimate == pytest.approx(400.0)
        assert cluster.ingest_epoch == 200


def test_cached_hit_epoch_matches_watermark_at_serve_time():
    """Cache keys carry the epoch: a hit can only be served while the
    cluster watermark still equals the epoch the answer was stored at."""
    with repro.ShardedTracker.create("hh/exact", shards=2, backend="thread",
                                     num_sites=4) as cluster:
        cluster.push_batch(WeightedItemBatch.from_pairs([("a", 1.0)]))
        epoch_at_store = cluster.ingest_epoch
        cluster.query(TotalWeight())
        before = cluster.answer_cache.hits
        assert cluster.ingest_epoch == epoch_at_store
        cluster.query(TotalWeight())
        assert cluster.answer_cache.hits == before + 1
        cluster.push_batch(WeightedItemBatch.from_pairs([("b", 1.0)]))
        assert cluster.ingest_epoch != epoch_at_store
        cluster.query(TotalWeight())             # new epoch -> miss, re-eval
        assert cluster.answer_cache.hits == before + 1


# --------------------------------------------------------------------------
# Invalidation on live shard handoff (placement generation).
# --------------------------------------------------------------------------
def test_move_shard_invalidates_cached_answers():
    sample, batch, _ = hh_stream(SEEDS[0])
    params = _params("hh/P2", SEEDS[0], None)
    with WorkerServer() as a, WorkerServer() as b:
        cluster = repro.ShardedTracker.create(
            "hh/P2", shards=2, backend="socket", chunk_size=CHUNK,
            backend_options={"addresses": [a.address],
                             "reconnect_backoff": 0.05},
            **params)
        try:
            cluster.push_batch(batch)
            cluster.flush()
            reference = cluster.query(TotalWeight())
            generation = cluster._cache_generation()
            hits_before = cluster.answer_cache.hits
            cluster.move_shard(0, b.address)
            # Both the epoch and the placement version moved: nothing
            # cached before the handoff is addressable afterwards.
            assert cluster._cache_generation() != generation
            after = cluster.query(TotalWeight())
            assert cluster.answer_cache.hits == hits_before
            assert after.to_json() == reference.to_json()
        finally:
            cluster.close()


# --------------------------------------------------------------------------
# Degraded stats: missing shards are reported, not fatal.
# --------------------------------------------------------------------------
class _PartiallyDeadBackend:
    """Delegates to a live backend but fails a fixed shard set."""

    def __init__(self, inner, dead):
        self._inner = inner
        self._dead = set(dead)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def call_all_partial(self, fn, *args):
        results, errors = self._inner.call_all_partial(fn, *args)
        for shard in self._dead:
            results[shard] = None
            errors[shard] = BackendError(f"shard {shard} lost")
        return results, errors


def test_stats_reports_missing_shards_instead_of_failing():
    with repro.ShardedTracker.create("hh/exact", shards=3, backend="thread",
                                     num_sites=4) as cluster:
        cluster.push_batch(WeightedItemBatch.from_pairs(
            [("a", 1.0), ("b", 2.0), ("c", 3.0)]))
        healthy = cluster.stats()
        assert healthy.missing_shards == ()
        assert all(row is not None for row in healthy.per_shard)

        cluster._backend = _PartiallyDeadBackend(cluster._backend, {1})
        degraded = cluster.stats()
        assert degraded.missing_shards == (1,)
        assert degraded.per_shard[1] is None
        assert degraded.per_shard[0] is not None
        # Sums cover the reachable shards only.
        live_items = sum(row[0] for row in degraded.per_shard
                         if row is not None)
        assert degraded.items_processed == live_items

        cluster._backend = _PartiallyDeadBackend(cluster._backend, {0, 1, 2})
        with pytest.raises(BackendError, match="all 3 shard"):
            cluster.stats()
        cluster._backend = cluster._backend._inner._inner
