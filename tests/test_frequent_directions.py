"""Unit tests for the Frequent Directions sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.frequent_directions import FrequentDirections
from repro.utils.linalg import covariance_error, squared_frobenius


def liberty_bound_holds(matrix: np.ndarray, sketch: FrequentDirections,
                        directions: int = 25, seed: int = 0) -> bool:
    """Check 0 <= ||Ax||^2 - ||Bx||^2 <= 2||A||_F^2 / l along random directions."""
    rng = np.random.default_rng(seed)
    bound = 2.0 * squared_frobenius(matrix) / sketch.sketch_size
    b = sketch.sketch_matrix()
    for _ in range(directions):
        x = rng.standard_normal(matrix.shape[1])
        x /= np.linalg.norm(x)
        true = float(np.linalg.norm(matrix @ x) ** 2)
        approx = float(np.linalg.norm(b @ x) ** 2) if b.size else 0.0
        if not (-1e-8 <= true - approx <= bound + 1e-8):
            return False
    return True


class TestFrequentDirections:
    def test_error_bound_random_matrix(self, small_matrix):
        sketch = FrequentDirections(dimension=small_matrix.shape[1], sketch_size=6)
        sketch.update_many(small_matrix)
        assert liberty_bound_holds(small_matrix, sketch)

    def test_spectral_covariance_bound(self, small_matrix):
        sketch = FrequentDirections(dimension=small_matrix.shape[1], sketch_size=6)
        sketch.update_many(small_matrix)
        error = covariance_error(small_matrix, sketch.compacted_matrix())
        assert error <= 2.0 / 6 + 1e-9

    def test_underestimates_along_every_direction(self, small_matrix):
        sketch = FrequentDirections(dimension=small_matrix.shape[1], sketch_size=4)
        sketch.update_many(small_matrix)
        b = sketch.sketch_matrix()
        rng = np.random.default_rng(1)
        for _ in range(20):
            x = rng.standard_normal(small_matrix.shape[1])
            true = float(np.linalg.norm(small_matrix @ x) ** 2)
            approx = float(np.linalg.norm(b @ x) ** 2)
            assert approx <= true + 1e-6

    def test_shrinkage_bounds_error(self, small_matrix):
        sketch = FrequentDirections(dimension=small_matrix.shape[1], sketch_size=5)
        sketch.update_many(small_matrix)
        error = covariance_error(small_matrix, sketch.compacted_matrix(),
                                 ) * squared_frobenius(small_matrix)
        assert error <= sketch.shrinkage + 1e-6

    def test_low_rank_input_is_exact(self, rng):
        # A matrix of rank 3 sketched with l > 3 loses nothing.
        basis = rng.standard_normal((3, 10))
        coefficients = rng.standard_normal((200, 3))
        matrix = coefficients @ basis
        sketch = FrequentDirections(dimension=10, sketch_size=5)
        sketch.update_many(matrix)
        assert covariance_error(matrix, sketch.compacted_matrix()) <= 1e-8

    def test_compacted_size(self, small_matrix):
        sketch = FrequentDirections(dimension=small_matrix.shape[1], sketch_size=4)
        sketch.update_many(small_matrix)
        assert sketch.compacted_matrix().shape[0] <= 4
        assert sketch.sketch_matrix().shape[0] <= 8

    def test_rows_seen_and_frobenius(self, small_matrix):
        sketch = FrequentDirections(dimension=small_matrix.shape[1], sketch_size=4)
        sketch.update_many(small_matrix)
        assert sketch.rows_seen == small_matrix.shape[0]
        assert sketch.squared_frobenius == pytest.approx(squared_frobenius(small_matrix))

    def test_from_epsilon(self):
        sketch = FrequentDirections.from_epsilon(dimension=5, epsilon=0.1)
        assert sketch.sketch_size == 20
        with pytest.raises(ValueError):
            FrequentDirections.from_epsilon(dimension=5, epsilon=0.0)

    def test_rejects_bad_rows(self):
        sketch = FrequentDirections(dimension=3, sketch_size=2)
        with pytest.raises(ValueError):
            sketch.update([1.0, 2.0])
        with pytest.raises(ValueError):
            sketch.update([1.0, float("nan"), 2.0])

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            FrequentDirections(dimension=0, sketch_size=2)
        with pytest.raises(ValueError):
            FrequentDirections(dimension=3, sketch_size=0)
        with pytest.raises(ValueError):
            FrequentDirections(dimension=3, sketch_size=2, buffer_multiplier=1)

    def test_reset(self, small_matrix):
        sketch = FrequentDirections(dimension=small_matrix.shape[1], sketch_size=4)
        sketch.update_many(small_matrix)
        sketch.reset()
        assert sketch.rows_seen == 0
        assert sketch.squared_frobenius == 0.0
        assert sketch.sketch_matrix().shape[0] == 0

    def test_copy_is_independent(self, small_matrix):
        sketch = FrequentDirections(dimension=small_matrix.shape[1], sketch_size=4)
        sketch.update_many(small_matrix[:100])
        clone = sketch.copy()
        sketch.update_many(small_matrix[100:])
        assert clone.rows_seen == 100
        assert sketch.rows_seen == small_matrix.shape[0]

    def test_top_directions_shape(self, small_matrix):
        sketch = FrequentDirections(dimension=small_matrix.shape[1], sketch_size=4)
        sketch.update_many(small_matrix)
        directions = sketch.top_directions(k=2)
        assert directions.shape == (2, small_matrix.shape[1])
        # Rows are orthonormal.
        assert np.allclose(directions @ directions.T, np.eye(2), atol=1e-8)

    def test_error_bound_method(self, small_matrix):
        sketch = FrequentDirections(dimension=small_matrix.shape[1], sketch_size=8)
        sketch.update_many(small_matrix)
        assert sketch.error_bound() == pytest.approx(
            2.0 * squared_frobenius(small_matrix) / 8
        )


class TestFrequentDirectionsMerge:
    def test_merge_preserves_guarantee(self, rng):
        matrix = rng.standard_normal((300, 8))
        half = 150
        left = FrequentDirections(dimension=8, sketch_size=6)
        right = FrequentDirections(dimension=8, sketch_size=6)
        left.update_many(matrix[:half])
        right.update_many(matrix[half:])
        merged = left.merge(right)
        # Merged error <= sum of the individual worst-case errors.
        error = covariance_error(matrix, merged.compacted_matrix())
        assert error <= 2.0 * (2.0 / 6) + 1e-9
        assert merged.squared_frobenius == pytest.approx(squared_frobenius(matrix))
        assert merged.rows_seen == 300

    def test_merge_dimension_mismatch(self):
        with pytest.raises(ValueError):
            FrequentDirections(3, 2).merge(FrequentDirections(4, 2))

    def test_merged_error_at_most_sum_of_input_errors(self, rng):
        """The mergeability theorem (stack-and-compact): for every direction
        ``x``, the merged undercount of ``‖Ax‖²`` is bounded by the sum of
        the two inputs' worst-case errors plus the merge's own shrinkage."""
        matrix = rng.standard_normal((400, 10))
        left = FrequentDirections(dimension=10, sketch_size=5)
        right = FrequentDirections(dimension=10, sketch_size=5)
        left.update_many(matrix[:200])
        right.update_many(matrix[200:])
        merged = left.merge(right)
        sketch = merged.compacted_matrix()
        budget = merged.shrinkage + 1e-9  # data-dependent certificate
        for x in np.eye(10):
            true = float(np.linalg.norm(matrix @ x) ** 2)
            approx = float(np.linalg.norm(sketch @ x) ** 2)
            assert -1e-9 <= true - approx <= budget
        assert budget <= 2.0 * squared_frobenius(matrix) / 5 + 1e-9

    def test_merge_accepts_uncompacted_buffers(self, rng):
        """Stack-and-compact must handle inputs whose buffers hold more than
        ``ℓ`` rows (no forced pre-compaction)."""
        rows = rng.standard_normal((7, 6))
        left = FrequentDirections(dimension=6, sketch_size=4)
        right = FrequentDirections(dimension=6, sketch_size=4)
        left.update_many(rows[:4])
        right.update_many(rows[4:])
        assert left.sketch_matrix().shape[0] == 4  # buffer, uncompacted
        merged = left.merge(right)
        assert merged.rows_seen == 7
        assert merged.squared_frobenius == pytest.approx(squared_frobenius(rows))


class TestCompactedView:
    def test_view_equals_compaction_without_mutating(self, rng):
        rows = rng.standard_normal((37, 6))
        sketch = FrequentDirections(dimension=6, sketch_size=4)
        sketch.update_many(rows)
        filled_before = sketch.sketch_matrix().shape[0]
        shrinkage_before = sketch.shrinkage
        view = sketch.compacted_view()
        # Read-only: the buffer and shrinkage accumulator are untouched.
        assert sketch.sketch_matrix().shape[0] == filled_before
        assert sketch.shrinkage == shrinkage_before
        # Same value a mutating compaction would return.
        assert np.array_equal(view, sketch.compacted_matrix())

    def test_view_of_small_buffer_is_a_copy(self):
        sketch = FrequentDirections(dimension=3, sketch_size=4)
        sketch.update(np.asarray([1.0, 0.0, 0.0]))
        view = sketch.compacted_view()
        view[0, 0] = 99.0
        assert sketch.sketch_matrix()[0, 0] == 1.0

    def test_merge_sketch_size_mismatch(self):
        with pytest.raises(ValueError):
            FrequentDirections(3, 2).merge(FrequentDirections(3, 3))

    def test_merge_type_check(self):
        with pytest.raises(TypeError):
            FrequentDirections(3, 2).merge(np.zeros((2, 3)))

    def test_merge_with_empty(self, small_matrix):
        left = FrequentDirections(dimension=small_matrix.shape[1], sketch_size=4)
        left.update_many(small_matrix)
        merged = left.merge(FrequentDirections(small_matrix.shape[1], 4))
        assert merged.squared_frobenius == pytest.approx(squared_frobenius(small_matrix))
