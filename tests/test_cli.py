"""Tests for the repro-experiments command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main

TINY_HH = ["--num-items", "2000", "--universe-size", "300", "--num-sites", "5",
           "--epsilons", "0.01,0.05"]
TINY_MATRIX = ["--num-rows", "600", "--num-sites", "5",
               "--epsilons", "0.05,0.5", "--sites", "4,8"]


def run_cli(argv):
    buffer = io.StringIO()
    code = main(argv, out=buffer)
    return code, buffer.getvalue()


class TestParser:
    def test_all_experiment_subcommands_exist(self):
        parser = build_parser()
        for command in ("list", "figure1", "figure1e", "figure1f", "table1",
                        "figure2", "figure3", "figure4", "figure67"):
            args = parser.parse_args([command] if command == "list"
                                     else [command])
            assert args.command == command

    def test_epsilon_list_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["figure1", "--epsilons", "0.01,0.02"])
        assert args.epsilons == [0.01, 0.02]

    def test_invalid_epsilon_list_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure1", "--epsilons", "abc"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self):
        code, output = run_cli(["list"])
        assert code == 0
        assert "figure1" in output
        assert "table1" in output

    def test_figure1(self):
        code, output = run_cli(["figure1", *TINY_HH])
        assert code == 0
        assert "Figure 1(a)" in output
        assert "Figure 1(d)" in output
        assert "P1" in output and "P4" in output

    def test_figure1e(self):
        code, output = run_cli(["figure1e", *TINY_HH])
        assert code == 0
        assert "Figure 1(e)" in output

    def test_figure1f(self):
        code, output = run_cli(["figure1f", *TINY_HH, "--beta", "100"])
        assert code == 0
        assert "Figure 1(f)" in output

    def test_table1(self):
        code, output = run_cli(["table1", *TINY_MATRIX])
        assert code == 0
        assert "Table 1" in output
        assert "P3wor" in output
        assert "SVD" in output

    def test_figure2(self):
        code, output = run_cli(["figure2", *TINY_MATRIX])
        assert code == 0
        assert "Figure 2(a)" in output
        assert "Figure 2(d)" in output

    def test_figure4(self):
        code, output = run_cli(["figure4", "--dataset", "msd", *TINY_MATRIX])
        assert code == 0
        assert "Figure 4" in output
        assert "msd" in output

    def test_figure67(self):
        code, output = run_cli(["figure67", "--dataset", "pamap", *TINY_MATRIX])
        assert code == 0
        assert "P4" in output


class TestWireAndWorkerCli:
    def test_worker_parser_and_option_validation(self):
        parser = build_parser()
        args = parser.parse_args(["worker", "--listen", "127.0.0.1:0"])
        assert args.command == "worker" and args.listen == "127.0.0.1:0"
        with pytest.raises(SystemExit):
            parser.parse_args(["worker"])  # --listen is required
        args = parser.parse_args(["bench", "--wire", "pickle"])
        assert args.wire == "pickle"
        with pytest.raises(SystemExit):
            parser.parse_args(["bench", "--wire", "msgpack"])

    def test_bench_wire_requires_shards(self):
        with pytest.raises(SystemExit, match="--shards"):
            run_cli(["bench", "--num-items", "2000", "--num-rows", "200",
                     "--protocols", "P1", "--wire", "pickle"])

    def test_bench_wire_requires_process_backend(self):
        with pytest.raises(SystemExit, match="process backend"):
            run_cli(["bench", "--num-items", "2000", "--num-rows", "200",
                     "--protocols", "P1", "--shards", "1",
                     "--backend", "serial", "--wire", "pickle"])

    def test_bench_kill_shard_at_requires_shards(self):
        with pytest.raises(SystemExit, match="--shards"):
            run_cli(["bench", "--num-items", "2000", "--num-rows", "200",
                     "--protocols", "P1", "--backend", "socket",
                     "--kill-shard-at", "1000"])

    def test_bench_kill_shard_at_requires_socket_backend(self):
        with pytest.raises(SystemExit, match="socket"):
            run_cli(["bench", "--num-items", "2000", "--num-rows", "200",
                     "--protocols", "P1", "--shards", "1",
                     "--backend", "process", "--kill-shard-at", "1000"])

    def test_bench_kill_shard_at_must_be_positive(self):
        with pytest.raises(SystemExit, match="positive"):
            run_cli(["bench", "--num-items", "2000", "--num-rows", "200",
                     "--protocols", "P1", "--shards", "1",
                     "--backend", "socket", "--kill-shard-at", "0"])

    def test_worker_parser_accepts_fault_tolerance_flags(self):
        parser = build_parser()
        args = parser.parse_args(["worker", "--listen", "127.0.0.1:0",
                                  "--standby", "--drain-grace", "2.5"])
        assert args.standby is True
        assert args.drain_grace == 2.5
        args = parser.parse_args(["worker", "--listen", "127.0.0.1:0"])
        assert args.standby is False and args.drain_grace is None

    def test_track_workers_requires_socket_backend(self):
        with pytest.raises(SystemExit, match="socket"):
            run_cli(["track", "--protocol", "hh/P1", "--num-items", "500",
                     "--num-sites", "2", "--epsilon", "0.5",
                     "--workers", "127.0.0.1:1"])


class TestBenchReportingCli:
    TINY_BENCH = ["bench", "--num-items", "3000", "--num-rows", "400",
                  "--protocols", "P1", "--matrix-protocols", "P1"]

    def test_bench_parser_accepts_new_knobs(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "--matrix-protocols", "P1,P2",
                                  "--svd-mode", "exact", "--wire", "zlib",
                                  "--json", "report.json", "--profile"])
        assert args.matrix_protocols == ["P1", "P2"]
        assert args.svd_mode == "exact"
        assert args.wire == "zlib"
        assert args.json_path == "report.json"
        assert args.profile is True
        with pytest.raises(SystemExit):
            parser.parse_args(["bench", "--matrix-protocols", "P9"])
        with pytest.raises(SystemExit):
            parser.parse_args(["bench", "--svd-mode", "fastest"])

    def test_bench_json_report_written(self, tmp_path):
        path = tmp_path / "bench.json"
        code, output = run_cli([*self.TINY_BENCH, "--svd-mode", "exact",
                                "--json", str(path)])
        assert code == 0
        assert str(path) in output

        import json

        report = json.loads(path.read_text())
        assert report["meta"]["svd_mode"] == "exact"
        assert report["meta"]["num_items"] == 3000
        assert report["scaling"] is None
        workloads = {(row["workload"], row["protocol"])
                     for row in report["throughput"]}
        assert any("svd_mode=exact" in protocol for _, protocol in workloads)
        for row in report["throughput"]:
            assert row["batched_items_per_sec"] > 0

    def test_bench_profile_prints_top_functions(self):
        code, output = run_cli([*self.TINY_BENCH, "--profile"])
        assert code == 0
        assert "cProfile top 20 by cumulative time" in output
        assert "cumtime" in output

    def test_track_over_embedded_socket_worker(self, tmp_path):
        from repro.cluster import WorkerServer

        with WorkerServer() as server:
            host, port = server.address
            path = tmp_path / "socket.ckpt"
            code, output = run_cli([
                "track", "--protocol", "hh/P2", "--num-items", "2000",
                "--universe-size", "300", "--num-sites", "5",
                "--epsilon", "0.05", "--shards", "2", "--backend", "socket",
                "--workers", f"{host}:{port}", "--save", str(path),
            ])
        assert code == 0
        assert "heavy hitters" in output
        assert "ShardedTracker" in output
        assert path.exists()
        from repro.wire import is_wire_data
        assert is_wire_data(path.read_bytes())

    def test_track_shards_1_nonserial_backend_uses_cluster(self):
        code, output = run_cli([
            "track", "--protocol", "hh/P1", "--num-items", "500",
            "--universe-size", "100", "--num-sites", "3",
            "--epsilon", "0.2", "--shards", "1", "--backend", "thread",
        ])
        assert code == 0
        assert "ShardedTracker" in output
