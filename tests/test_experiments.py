"""Tests for the experiment drivers (scaled-down versions of every figure/table)."""

from __future__ import annotations

import pytest

from repro.experiments.config import HeavyHitterConfig, MatrixConfig
from repro.experiments.heavy_hitters_experiments import (
    build_protocols as build_hh_protocols,
    figure1_sweep_epsilon,
    figure1e_error_vs_messages,
    figure1f_messages_vs_beta,
    generate_stream,
    theoretical_message_bounds,
)
from repro.experiments.matrix_experiments import (
    build_protocols as build_matrix_protocols,
    figure4_tradeoff,
    figure67_p4_comparison,
    figure_sweep_epsilon,
    figure_sweep_sites,
    load_experiment_dataset,
    table1_rows,
)


@pytest.fixture(scope="module")
def tiny_hh_config():
    return HeavyHitterConfig(num_items=4_000, universe_size=500, num_sites=10,
                             seed=1, epsilon_grid=[5e-3, 5e-2],
                             beta_grid=[1.0, 100.0])


@pytest.fixture(scope="module")
def tiny_matrix_config():
    return MatrixConfig(num_rows=1_200, num_sites=10, seed=1,
                        epsilon_grid=[5e-2, 5e-1], site_grid=[5, 20])


class TestHeavyHitterConfig:
    def test_defaults_match_paper(self):
        config = HeavyHitterConfig()
        assert config.phi == 0.05
        assert config.num_sites == 50
        assert config.beta == 1_000.0
        assert config.skew == 2.0

    def test_scaled(self):
        config = HeavyHitterConfig().scaled(10)
        assert config.num_items == 10

    def test_build_protocols_labels(self, tiny_hh_config):
        protocols = build_hh_protocols(tiny_hh_config, include_with_replacement=True)
        assert set(protocols) == {"P1", "P2", "P3", "P4", "P3wr"}

    def test_theoretical_bounds_ordering(self, tiny_hh_config):
        bounds = theoretical_message_bounds(tiny_hh_config, epsilon=0.01)
        assert bounds["P2"] < bounds["P1"]
        assert bounds["P4"] < bounds["P2"]


class TestFigure1:
    def test_epsilon_sweep_shapes(self, tiny_hh_config):
        result = figure1_sweep_epsilon(tiny_hh_config)
        assert result.parameter == "epsilon"
        assert set(result.protocols()) == {"P1", "P2", "P3", "P4"}
        assert result.values() == tiny_hh_config.epsilon_grid
        recall = result.series("recall")
        for protocol, values in recall.items():
            assert all(value >= 0.99 for value in values), protocol

    def test_errors_below_guarantee(self, tiny_hh_config):
        # An absolute estimation error of eps*W translates into a relative
        # error of at most eps/phi on a true phi-heavy hitter.
        result = figure1_sweep_epsilon(tiny_hh_config)
        for record in result.records:
            if record.protocol == "P4":
                continue  # randomized, constant-probability guarantee
            assert record.metrics["err"] <= record.value / tiny_hh_config.phi + 1e-9

    def test_messages_decrease_with_epsilon_for_p2(self, tiny_hh_config):
        result = figure1_sweep_epsilon(tiny_hh_config)
        messages = result.series("msg")["P2"]
        assert messages[0] >= messages[-1]

    def test_error_vs_messages_rows(self, tiny_hh_config):
        rows = figure1e_error_vs_messages(tiny_hh_config)
        assert len(rows) == 4 * len(tiny_hh_config.epsilon_grid)
        assert {"protocol", "epsilon", "msg", "err"} <= set(rows[0])

    def test_beta_sweep(self, tiny_hh_config):
        result = figure1f_messages_vs_beta(tiny_hh_config)
        assert result.parameter == "beta"
        assert result.values() == tiny_hh_config.beta_grid
        for protocol, series in result.series("recall").items():
            assert all(value >= 0.99 for value in series), protocol


class TestMatrixConfig:
    def test_defaults_match_paper(self):
        config = MatrixConfig()
        assert config.epsilon == 0.1
        assert config.num_sites == 50
        assert config.pamap_rank == 30
        assert config.msd_rank == 50

    def test_rank_for(self):
        config = MatrixConfig()
        assert config.rank_for("pamap") == 30
        assert config.rank_for("msd") == 50

    def test_build_protocols_labels(self, tiny_matrix_config):
        dataset = load_experiment_dataset(tiny_matrix_config, "pamap")
        protocols = build_matrix_protocols(
            tiny_matrix_config, dataset.dimension, dataset.num_rows,
            include_with_replacement=True, include_p4=True)
        assert set(protocols) == {"P1", "P2", "P3", "P3wr", "P4"}


class TestTable1:
    def test_rows_cover_all_methods_and_datasets(self, tiny_matrix_config):
        rows = table1_rows(tiny_matrix_config)
        methods = {row["method"] for row in rows}
        datasets = {row["dataset"] for row in rows}
        assert methods == {"P1", "P2", "P3wor", "P3wr", "FD", "SVD"}
        assert datasets == {"pamap", "msd"}
        assert len(rows) == 12

    def test_qualitative_shape(self, tiny_matrix_config):
        rows = {(row["dataset"], row["method"]): row
                for row in table1_rows(tiny_matrix_config)}
        # The low-rank dataset is essentially exactly recoverable by SVD/FD.
        assert rows[("pamap", "SVD")]["err"] < 1e-4
        assert rows[("pamap", "FD")]["err"] < 1e-3
        # The high-rank dataset keeps residual error even for SVD at rank 50.
        assert rows[("msd", "SVD")]["err"] > 1e-4
        # P2 and P3 save communication relative to the send-everything baselines.
        for dataset in ("pamap", "msd"):
            naive = rows[(dataset, "SVD")]["msg"]
            assert rows[(dataset, "P2")]["msg"] < naive
            assert rows[(dataset, "P3wor")]["msg"] < naive


class TestMatrixSweeps:
    def test_epsilon_sweep(self, tiny_matrix_config):
        result = figure_sweep_epsilon("pamap", tiny_matrix_config)
        assert set(result.protocols()) == {"P1", "P2", "P3"}
        errors = result.series("err")
        # P2's error grows (weakly) with epsilon.
        assert errors["P2"][0] <= errors["P2"][-1] + 1e-6
        # All protocols respect their guarantee.
        for record in result.records:
            assert record.metrics["err"] <= max(record.value, 0.35)

    def test_site_sweep(self, tiny_matrix_config):
        result = figure_sweep_sites("msd", tiny_matrix_config)
        assert result.parameter == "num_sites"
        messages = result.series("msg")
        # P2 and P3 messages grow with the number of sites.
        assert messages["P2"][-1] >= messages["P2"][0]
        assert messages["P3"][-1] >= messages["P3"][0]

    def test_figure4_rows(self, tiny_matrix_config):
        rows = figure4_tradeoff("pamap", tiny_matrix_config)
        assert {"protocol", "epsilon", "err", "msg"} <= set(rows[0])
        assert len(rows) == 3 * len(tiny_matrix_config.epsilon_grid)

    def test_figure67_includes_p4_and_shows_blowup(self, tiny_matrix_config):
        results = figure67_p4_comparison("pamap", tiny_matrix_config,
                                         epsilons=[5e-2],
                                         site_counts=[10])
        eps_sweep = results["err_vs_epsilon"]
        assert "P4" in eps_sweep.protocols()
        p4_error = eps_sweep.series("err")["P4"][0]
        p2_error = eps_sweep.series("err")["P2"][0]
        assert p4_error > p2_error
