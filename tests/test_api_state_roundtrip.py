"""Checkpoint/resume equivalence: save mid-stream, resume bit-identically.

The core property of ``repro.api.state``: for **every** registered protocol
spec, a tracker saved mid-stream and loaded back must finish the stream
*bit-identically* to one that never stopped — identical query answers,
identical message accounting (units, kinds, directions and transmission
counts) and identical per-site RNG states.

Streams and site assignments reuse the property harness of
``test_protocol_equivalence_properties`` (seed-parameterized via
``REPRO_PROPERTY_SEEDS``).  The split point is aligned to the tracker chunk
size so the uninterrupted and resumed runs ingest identical site batches —
the same condition under which two ``tracker.run`` instalments equal one.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro
from repro.api import (
    CheckpointError,
    Covariance,
    FrobeniusSquared,
    HeavyHitters,
    TotalWeight,
    available_specs,
    load_protocol,
    save_protocol,
)
from repro.api.state import CHECKPOINT_VERSION
from repro.sketch import FrequentDirections, WeightedMisraGries
from repro.utils.stateio import StateError, restore_object

from test_protocol_equivalence_properties import (
    NUM_SITES,
    SEEDS,
    hh_stream,
    matrix_stream,
)

CHUNK = 50          # tracker chunk size; the split point is a multiple of it
HH_EPSILON = 0.1
MATRIX_EPSILON = 0.2

#: Spec -> extra parameters (beyond num_sites/epsilon/dimension); the seed
#: placeholder is filled per test seed for the randomized protocols.
HH_SPECS = {
    "hh/P1": {},
    "hh/P2": {},
    "hh/P2ss": {"site_space": 64},
    "hh/P3": {"sample_size": 150, "seed": None},
    "hh/P3wr": {"num_samplers": 40, "seed": None},
    "hh/P4": {"seed": None},
    "hh/exact": {},
}
MATRIX_SPECS = {
    "matrix/P1": {},
    "matrix/P2": {},
    "matrix/P3": {"sample_size": 100, "seed": None},
    "matrix/P3wr": {"num_samplers": 30, "seed": None},
    "matrix/P4": {"seed": None},
    "matrix/FD": {"sketch_size": 12},
    "matrix/SVD": {},
}


def test_every_registered_spec_is_covered():
    """The round-trip property must cover the whole registry."""
    assert sorted(HH_SPECS) + sorted(MATRIX_SPECS) == available_specs()


def _params(spec: str, seed: int, dimension: int = None) -> dict:
    extra = dict(HH_SPECS[spec] if spec in HH_SPECS else MATRIX_SPECS[spec])
    if "seed" in extra:
        extra["seed"] = seed + 101
    params = {"num_sites": NUM_SITES, **extra}
    if spec.startswith("matrix/"):
        params["dimension"] = dimension
        if spec not in ("matrix/FD", "matrix/SVD"):
            params["epsilon"] = MATRIX_EPSILON
    elif spec != "hh/exact":
        params["epsilon"] = HH_EPSILON
    return params


def _tracker(spec: str, seed: int, dimension: int = None) -> repro.Tracker:
    return repro.Tracker.create(spec, chunk_size=CHUNK,
                                **_params(spec, seed, dimension))


def _run_with_sites(tracker, sites, batch, start, stop):
    for begin in range(start, stop, CHUNK):
        end = min(begin + CHUNK, stop)
        tracker.push_batch(sites[begin:end], batch[begin:end])


def _rng_states(protocol):
    generators = getattr(protocol, "_site_rngs", None)
    if generators is None:
        return None
    return [generator.bit_generator.state for generator in generators]


def _assert_identical_accounting(resumed, uninterrupted):
    assert resumed.items_processed == uninterrupted.items_processed
    assert resumed.total_messages == uninterrupted.total_messages
    assert (resumed.protocol.message_counts()
            == uninterrupted.protocol.message_counts())
    assert _rng_states(resumed.protocol) == _rng_states(uninterrupted.protocol)


class TestHeavyHitterRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("spec", sorted(HH_SPECS))
    def test_save_load_mid_stream_is_bit_identical(self, spec, seed, tmp_path):
        _, batch, sites = hh_stream(seed)
        half = (len(batch) // (2 * CHUNK)) * CHUNK

        uninterrupted = _tracker(spec, seed)
        _run_with_sites(uninterrupted, sites, batch, 0, half)
        _run_with_sites(uninterrupted, sites, batch, half, len(batch))

        interrupted = _tracker(spec, seed)
        _run_with_sites(interrupted, sites, batch, 0, half)
        path = tmp_path / "session.ckpt"
        interrupted.save(path)
        resumed = repro.Tracker.load(path)
        assert resumed.spec == spec
        assert resumed.items_processed == half
        # The live tracker keeps running: saving must not disturb it.
        _run_with_sites(interrupted, sites, batch, half, len(batch))
        _run_with_sites(resumed, sites, batch, half, len(batch))

        for finished in (interrupted, resumed):
            _assert_identical_accounting(finished, uninterrupted)
            assert (finished.protocol.estimates()
                    == uninterrupted.protocol.estimates())
            assert (finished.query(HeavyHitters(phi=0.06))
                    == uninterrupted.query(HeavyHitters(phi=0.06)))
            assert (finished.query(TotalWeight())
                    == uninterrupted.query(TotalWeight()))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_resume_through_tracker_run_partitioner_continues(self, seed):
        """``tracker.run`` instalments split at chunk boundaries resume the
        round-robin assignment exactly, across a save/load."""
        _, batch, _ = hh_stream(seed)
        half = (len(batch) // (2 * CHUNK)) * CHUNK

        uninterrupted = _tracker("hh/P3", seed)
        uninterrupted.run(batch[:half])
        uninterrupted.run(batch[half:])

        state = pickle.loads(pickle.dumps(uninterrupted))  # sanity: picklable
        assert state.total_messages == uninterrupted.total_messages

        resumed = _tracker("hh/P3", seed)
        resumed.run(batch[:half])
        payload = pickle.dumps(resumed.protocol.get_state())
        resumed.protocol.set_state(pickle.loads(payload))
        resumed.run(batch[half:])
        assert resumed.total_messages == uninterrupted.total_messages
        assert resumed.protocol.estimates() == uninterrupted.protocol.estimates()


class TestMatrixRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("spec", sorted(MATRIX_SPECS))
    def test_save_load_mid_stream_is_bit_identical(self, spec, seed, tmp_path):
        dataset, batch, sites = matrix_stream(seed)
        half = (len(batch) // (2 * CHUNK)) * CHUNK

        uninterrupted = _tracker(spec, seed, dataset.dimension)
        _run_with_sites(uninterrupted, sites, batch, 0, half)
        _run_with_sites(uninterrupted, sites, batch, half, len(batch))

        interrupted = _tracker(spec, seed, dataset.dimension)
        _run_with_sites(interrupted, sites, batch, 0, half)
        path = tmp_path / "session.ckpt"
        interrupted.save(path)
        resumed = repro.Tracker.load(path)
        _run_with_sites(resumed, sites, batch, half, len(batch))

        _assert_identical_accounting(resumed, uninterrupted)
        assert np.array_equal(resumed.protocol.sketch_matrix(),
                              uninterrupted.protocol.sketch_matrix())
        assert (resumed.query(FrobeniusSquared()).estimate
                == uninterrupted.query(FrobeniusSquared()).estimate)
        ours = resumed.query(Covariance())
        theirs = uninterrupted.query(Covariance())
        assert np.array_equal(ours.estimate, theirs.estimate)
        assert ours.error_bound == theirs.error_bound


class TestCheckpointCompression:
    """``save(compress=..., float32=...)``: v1 files keep loading, deflated
    files resume bit-identically, the float32 downcast is opt-in and lossy."""

    @staticmethod
    def _header_version(path):
        import struct

        with open(path, "rb") as handle:
            header = handle.read(6)
        return struct.unpack("<4sH", header)[1]

    @pytest.mark.parametrize("seed", SEEDS[:1])
    def test_plain_v1_and_compressed_v2_resume_identically(self, seed, tmp_path):
        dataset, batch, sites = matrix_stream(seed)
        half = (len(batch) // (2 * CHUNK)) * CHUNK

        uninterrupted = _tracker("matrix/P1", seed, dataset.dimension)
        _run_with_sites(uninterrupted, sites, batch, 0, half)
        _run_with_sites(uninterrupted, sites, batch, half, len(batch))

        interrupted = _tracker("matrix/P1", seed, dataset.dimension)
        _run_with_sites(interrupted, sites, batch, 0, half)
        plain = tmp_path / "plain.ckpt"
        deflated = tmp_path / "deflated.ckpt"
        interrupted.save(plain, compress=False)
        interrupted.save(deflated)  # compression is the default
        # The uncompressed file is a base-version frame — exactly what a
        # pre-compression build wrote, pinning forward-loadability.
        assert self._header_version(plain) == 1

        for path in (plain, deflated):
            resumed = repro.Tracker.load(path)
            _run_with_sites(resumed, sites, batch, half, len(batch))
            _assert_identical_accounting(resumed, uninterrupted)
            assert np.array_equal(resumed.protocol.sketch_matrix(),
                                  uninterrupted.protocol.sketch_matrix())

    @pytest.mark.parametrize("seed", SEEDS[:1])
    def test_compressed_checkpoint_is_smaller(self, seed, tmp_path):
        _, batch, sites = hh_stream(seed)
        tracker = _tracker("hh/P2", seed)
        _run_with_sites(tracker, sites, batch, 0, len(batch))
        plain = tmp_path / "plain.ckpt"
        deflated = tmp_path / "deflated.ckpt"
        tracker.save(plain, compress=False)
        tracker.save(deflated, compress=True)
        assert deflated.stat().st_size < plain.stat().st_size

    @pytest.mark.parametrize("seed", SEEDS[:1])
    def test_float32_checkpoint_is_optin_and_near_lossless(self, seed, tmp_path):
        dataset, batch, sites = matrix_stream(seed)
        tracker = _tracker("matrix/P1", seed, dataset.dimension)
        _run_with_sites(tracker, sites, batch, 0, len(batch))
        path = tmp_path / "f32.ckpt"
        tracker.save(path, float32=True)

        resumed = repro.Tracker.load(path)
        original = tracker.protocol.sketch_matrix()
        restored = resumed.protocol.sketch_matrix()
        assert restored.dtype == np.float64
        assert not np.array_equal(restored, original)  # lossy, by contract
        # The ~1e-7 relative perturbation can flip SVD row signs, so compare
        # the sign-invariant covariance the sketch actually approximates.
        scale = max(1.0, float(np.abs(original).max()) ** 2)
        np.testing.assert_allclose(restored.T @ restored,
                                   original.T @ original,
                                   rtol=1e-5, atol=1e-5 * scale)


class TestProtocolCheckpointHelpers:
    def test_save_load_protocol_without_session(self, tmp_path):
        protocol = repro.create("hh/P4", num_sites=3, epsilon=0.1, seed=5)
        protocol.observe_batch([0, 1, 2], [("a", 2.0), ("b", 1.0), ("a", 4.0)])
        path = tmp_path / "protocol.ckpt"
        save_protocol(protocol, path)
        clone = load_protocol(path)
        assert type(clone) is type(protocol)
        assert clone.message_counts() == protocol.message_counts()
        assert clone.estimates() == protocol.estimates()
        assert _rng_states(clone) == _rng_states(protocol)

    def test_checkpoint_rejects_garbage_and_wrong_versions(self, tmp_path):
        from repro.wire import pack_frame

        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            repro.Tracker.load(path)
        # Right frame kind, wrong checkpoint payload version.
        path.write_bytes(pack_frame("repro/tracker-checkpoint",
                                    {"version": CHECKPOINT_VERSION + 1}))
        with pytest.raises(CheckpointError, match="version"):
            repro.Tracker.load(path)
        # Wrong frame kind entirely.
        path.write_bytes(pack_frame("repro/other", {"version": 1}))
        with pytest.raises(CheckpointError, match="repro/tracker-checkpoint"):
            repro.Tracker.load(path)

    def test_legacy_pickle_checkpoints_gated_behind_allow_pickle(self, tmp_path):
        """Old pickle checkpoints load only with allow_pickle=True (plus a
        DeprecationWarning); without it the error explains the gate."""
        protocol = repro.create("hh/P2", num_sites=3, epsilon=0.1)
        protocol.observe_batch([0, 1, 2], [("a", 2.0), ("b", 1.0), ("a", 4.0)])
        tracker = repro.Tracker(protocol)
        # A pre-wire checkpoint, as earlier releases wrote it.
        from repro.api.state import tracker_payload
        payload = tracker_payload(tracker)
        payload["format"] = "repro/tracker-checkpoint"
        payload["version"] = CHECKPOINT_VERSION
        path = tmp_path / "legacy.ckpt"
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)

        with pytest.raises(CheckpointError, match="allow_pickle"):
            repro.Tracker.load(path)
        with pytest.warns(DeprecationWarning, match="pickle"):
            resumed = repro.Tracker.load(path, allow_pickle=True)
        assert resumed.protocol.estimates() == tracker.protocol.estimates()
        assert resumed.protocol.message_counts() == tracker.protocol.message_counts()
        # Even behind allow_pickle, a wrong-flavour legacy checkpoint is
        # rejected by its format tag.
        wrong = tmp_path / "wrong-format.ckpt"
        with open(wrong, "wb") as handle:
            pickle.dump({"format": "something-else",
                         "version": CHECKPOINT_VERSION}, handle)
        with pytest.warns(DeprecationWarning, match="pickle"):
            with pytest.raises(CheckpointError, match="not a"):
                repro.Tracker.load(wrong, allow_pickle=True)

    def test_checkpoint_files_contain_no_pickle_payloads(self, tmp_path):
        """The acceptance criterion in file form: a fresh checkpoint is one
        wire frame, not a pickle stream."""
        from repro.wire import is_wire_data

        tracker = repro.Tracker.create("hh/P2", num_sites=3, epsilon=0.1)
        tracker.run([("a", 2.0), ("b", 1.0)])
        path = tmp_path / "session.ckpt"
        tracker.save(path)
        data = path.read_bytes()
        assert is_wire_data(data)
        assert not data.startswith(b"\x80")  # no pickle PROTO opcode
        assert b"repro/tracker-checkpoint" in data[:64]


class TestStatefulContract:
    def test_sketch_state_roundtrip_continues_identically(self):
        rng = np.random.default_rng(3)
        rows = rng.standard_normal((120, 6))
        sketch = FrequentDirections(dimension=6, sketch_size=4)
        sketch.append_batch(rows[:60])
        clone = restore_object(sketch.get_state())
        sketch.append_batch(rows[60:])
        clone.append_batch(rows[60:])
        assert np.array_equal(sketch.sketch_matrix(), clone.sketch_matrix())
        assert sketch.shrinkage == clone.shrinkage

        summary = WeightedMisraGries(num_counters=4)
        summary.update_batch(["a", "b", "c", "a"], [3.0, 2.0, 1.0, 5.0])
        twin = restore_object(summary.get_state())
        for target in (summary, twin):
            target.update("d", 7.0)
        assert summary.to_dict() == twin.to_dict()
        assert summary.shrink_total == twin.shrink_total

    def test_nested_component_version_mismatch_is_rejected(self):
        """Bumping a *nested* component's state_version (e.g. a sketch
        embedded in a site state) must invalidate older protocol states."""
        protocol = repro.create("hh/P1", num_sites=2, epsilon=0.2)
        protocol.observe_batch([0, 1], [("a", 1.0), ("b", 2.0)])
        state = protocol.get_state()
        component_classes = [cls for cls, _ in state["component_versions"]]
        assert WeightedMisraGries in component_classes  # nested in site state
        state["component_versions"] = tuple(
            (cls, version + (cls is WeightedMisraGries))
            for cls, version in state["component_versions"]
        )
        fresh = repro.create("hh/P1", num_sites=2, epsilon=0.2)
        with pytest.raises(StateError, match="WeightedMisraGries"):
            fresh.set_state(state)

    def test_set_state_rejects_wrong_class_and_version(self):
        sketch = FrequentDirections(dimension=4, sketch_size=2)
        summary = WeightedMisraGries(num_counters=2)
        with pytest.raises(StateError, match="captured from"):
            summary.set_state(sketch.get_state())
        state = summary.get_state()
        state["state_version"] = 999
        with pytest.raises(StateError, match="version"):
            summary.set_state(state)
        with pytest.raises(StateError):
            restore_object({"cls": int, "data": {}})

    def test_snapshot_is_isolated_from_the_live_object(self):
        counter = WeightedMisraGries(num_counters=3)
        counter.update("x", 1.0)
        state = counter.get_state()
        counter.update("y", 2.0)
        clone = restore_object(state)
        assert clone.to_dict() == {"x": 1.0}
        # Restoring twice must not alias state between the two instances.
        other = restore_object(state)
        other.update("z", 9.0)
        assert clone.to_dict() == {"x": 1.0}
