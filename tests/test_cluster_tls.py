"""Socket-backend transport hardening: TLS and the HMAC launch handshake.

Certificates are generated on the fly with the ``openssl`` binary (skipped
when unavailable): a test CA, a server certificate for ``127.0.0.1`` (SAN
``IP:127.0.0.1`` — the client context verifies hostnames), a client
certificate for mutual TLS, and an **expired** client certificate for the
failure-mode tests.

What must hold:

* TLS + auth change nothing about the answers: a cluster over a hardened
  worker is bit-identical to a serial session — including through a
  mid-stream session kill healed by reconnect/replay (the reconnect
  re-runs the TLS and HMAC handshakes).
* Every misconfiguration fails fast with a ``BackendError`` that names the
  shard and says what to fix — wrong/missing token, plaintext client
  against a TLS worker, expired client certificate.  No hangs: everything
  resolves within ``connect_timeout``.
"""

from __future__ import annotations

import shutil
import subprocess
import time

import pytest

import repro
from repro.api.queries import TotalWeight
from repro.cluster import BackendError, WorkerServer, server_ssl_context
from repro.cluster.socket_backend import client_ssl_context

pytestmark = pytest.mark.skipif(shutil.which("openssl") is None,
                                reason="openssl binary not available")

CONNECT_TIMEOUT = 2.0
DEADLINE = 8.0  # generous ceiling: "failed fast", not "hung until io_timeout"


def _openssl(*args, cwd) -> None:
    subprocess.run(["openssl", *args], cwd=cwd, check=True,
                   capture_output=True, timeout=60)


@pytest.fixture(scope="module")
def certs(tmp_path_factory):
    """Generate the CA / server / client / expired-client certificates."""
    root = tmp_path_factory.mktemp("tls-certs")
    try:
        _openssl("req", "-x509", "-newkey", "rsa:2048", "-nodes",
                 "-keyout", "ca.key", "-out", "ca.pem", "-days", "2",
                 "-subj", "/CN=repro-test-ca", cwd=root)
        (root / "san.cnf").write_text("subjectAltName=IP:127.0.0.1\n")
        _openssl("req", "-newkey", "rsa:2048", "-nodes",
                 "-keyout", "server.key", "-out", "server.csr",
                 "-subj", "/CN=127.0.0.1", cwd=root)
        _openssl("x509", "-req", "-in", "server.csr", "-CA", "ca.pem",
                 "-CAkey", "ca.key", "-CAcreateserial", "-out", "server.pem",
                 "-days", "2", "-extfile", "san.cnf", cwd=root)
        _openssl("req", "-newkey", "rsa:2048", "-nodes",
                 "-keyout", "client.key", "-out", "client.csr",
                 "-subj", "/CN=repro-client", cwd=root)
        _openssl("x509", "-req", "-in", "client.csr", "-CA", "ca.pem",
                 "-CAkey", "ca.key", "-out", "client.pem", "-days", "2",
                 cwd=root)
    except (subprocess.CalledProcessError, subprocess.TimeoutExpired) as exc:
        pytest.skip(f"openssl certificate generation failed: {exc}")
    try:
        # An expired client certificate (signed, but validity in the past);
        # needs OpenSSL >= 3.3 for -not_before/-not_after.
        _openssl("x509", "-req", "-in", "client.csr", "-CA", "ca.pem",
                 "-CAkey", "ca.key", "-out", "client-expired.pem",
                 "-not_before", "20200101000000Z",
                 "-not_after", "20200102000000Z", cwd=root)
    except subprocess.CalledProcessError:
        pass  # the expired-cert test skips itself below
    return root


def _tls_worker(certs, *, mutual: bool = False, auth_token=None):
    context = server_ssl_context(
        str(certs / "server.pem"), keyfile=str(certs / "server.key"),
        cafile=str(certs / "ca.pem") if mutual else None)
    return WorkerServer(ssl_context=context, auth_token=auth_token)


def _cluster(server, **backend_options):
    options = {"addresses": [f"127.0.0.1:{server.address[1]}"],
               "connect_timeout": CONNECT_TIMEOUT,
               "reconnect_backoff": 0.05,
               **backend_options}
    return repro.ShardedTracker.create("hh/P2", shards=2, num_sites=5,
                                       epsilon=0.1, backend="socket",
                                       backend_options=options)


def _ca_options(certs, **extra):
    return {"tls_ca": str(certs / "ca.pem"), **extra}


class TestHardenedTransport:
    def test_tls_auth_cluster_is_bit_identical_through_kill_and_heal(
            self, certs):
        """TLS + HMAC auth + a mid-stream kill: answers stay bit-identical
        to the same cluster over a plain, never-killed transport (the
        healed reconnect re-runs both the TLS and the HMAC handshake)."""
        items = [(index % 13, float(index % 5 + 1)) for index in range(400)]

        with WorkerServer() as plain_server:
            reference = _cluster(plain_server)
            reference.push_batch(items[:200])
            reference.push_batch(items[200:])
            expected = {
                "total": reference.query(TotalWeight()).to_json(),
                "hitters": reference.query(
                    repro.HeavyHitters(phi=0.05)).to_json(),
            }
            reference.close()

        with _tls_worker(certs, auth_token="secret") as server:
            cluster = _cluster(server,
                               **_ca_options(certs, auth_token="secret"))
            cluster.push_batch(items[:200])
            cluster.flush()
            assert server.kill_sessions() > 0
            cluster.push_batch(items[200:])

            total = cluster.query(TotalWeight())
            assert total.to_json() == expected["total"]
            assert total.missing_shards == ()
            hitters = cluster.query(repro.HeavyHitters(phi=0.05))
            assert hitters.to_json() == expected["hitters"]
            cluster.close()

    def test_mutual_tls_with_client_certificate(self, certs):
        with _tls_worker(certs, mutual=True) as server:
            cluster = _cluster(
                server, **_ca_options(certs,
                                      tls_cert=str(certs / "client.pem"),
                                      tls_key=str(certs / "client.key")))
            cluster.push_batch([(1, 2.0), (2, 3.0)])
            assert cluster.query(TotalWeight()).estimate == pytest.approx(5.0)
            cluster.close()

    def test_wrong_auth_token_fails_naming_the_shard(self, certs):
        with WorkerServer(auth_token="right") as server:
            started = time.monotonic()
            with pytest.raises(BackendError, match=r"shard \d.*authentication"
                                                   r"|authentication.*shard"):
                _cluster(server, auth_token="wrong")
            assert time.monotonic() - started < DEADLINE

    def test_missing_auth_token_fails_with_instructions(self, certs):
        with WorkerServer(auth_token="right") as server:
            started = time.monotonic()
            with pytest.raises(BackendError, match="auth_token"):
                _cluster(server)
            assert time.monotonic() - started < DEADLINE

    def test_plaintext_client_against_tls_worker_fails_fast(self, certs):
        with _tls_worker(certs) as server:
            started = time.monotonic()
            with pytest.raises(BackendError, match="tls|TLS"):
                _cluster(server)
            assert time.monotonic() - started < DEADLINE

    def test_expired_client_certificate_fails_fast(self, certs):
        expired = certs / "client-expired.pem"
        if not expired.exists():
            pytest.skip("openssl too old for -not_before/-not_after")
        with _tls_worker(certs, mutual=True) as server:
            started = time.monotonic()
            with pytest.raises(BackendError):
                _cluster(server, **_ca_options(
                    certs, tls_cert=str(expired),
                    tls_key=str(certs / "client.key")))
            assert time.monotonic() - started < DEADLINE
