"""Unit tests for weighted heavy-hitter protocols P1 and P2."""

from __future__ import annotations

import pytest

from repro.heavy_hitters.p1_batched_mg import BatchedMisraGriesProtocol
from repro.heavy_hitters.p2_threshold import ThresholdedUpdatesProtocol
from repro.streaming.partition import RoundRobinPartitioner


def feed(protocol, items):
    partitioner = RoundRobinPartitioner(protocol.num_sites)
    for index, (element, weight) in enumerate(items):
        protocol.process(partitioner.assign(index, element), element, weight)


EPSILON = 0.02


class TestProtocolP1:
    def test_estimates_within_epsilon_w(self, zipf_sample):
        protocol = BatchedMisraGriesProtocol(num_sites=10, epsilon=EPSILON)
        feed(protocol, zipf_sample.items)
        budget = EPSILON * zipf_sample.total_weight
        for element, truth in zipf_sample.element_weights.items():
            assert abs(protocol.estimate(element) - truth) <= budget + 1e-6

    def test_total_weight_estimate_close(self, zipf_sample):
        protocol = BatchedMisraGriesProtocol(num_sites=10, epsilon=EPSILON)
        feed(protocol, zipf_sample.items)
        assert protocol.estimated_total_weight() == pytest.approx(
            zipf_sample.total_weight, rel=EPSILON
        )

    def test_heavy_hitters_recall_is_perfect(self, zipf_sample):
        protocol = BatchedMisraGriesProtocol(num_sites=10, epsilon=EPSILON)
        feed(protocol, zipf_sample.items)
        returned = set(protocol.heavy_hitter_elements(0.05))
        for element in zipf_sample.heavy_hitters(0.05):
            assert element in returned

    def test_no_false_positives_below_phi_minus_epsilon(self, zipf_sample):
        protocol = BatchedMisraGriesProtocol(num_sites=10, epsilon=EPSILON)
        feed(protocol, zipf_sample.items)
        phi = 0.05
        for hitter in protocol.heavy_hitters(phi):
            truth = zipf_sample.element_weights.get(hitter.element, 0.0)
            assert truth / zipf_sample.total_weight >= phi - EPSILON - 1e-9

    def test_communication_much_smaller_than_naive_elementwise(self, zipf_sample):
        # P1 batches whole summaries; compare against one message per item
        # times the summary size it would take to send raw items.
        protocol = BatchedMisraGriesProtocol(num_sites=5, epsilon=0.05)
        feed(protocol, zipf_sample.items)
        assert protocol.total_messages < len(zipf_sample.items) * 2

    def test_broadcast_weight_monotone(self, zipf_sample):
        protocol = BatchedMisraGriesProtocol(num_sites=5, epsilon=0.05)
        last = 0.0
        partitioner = RoundRobinPartitioner(5)
        for index, (element, weight) in enumerate(zipf_sample.items[:500]):
            protocol.process(partitioner.assign(index, element), element, weight)
            assert protocol.broadcast_weight >= last
            last = protocol.broadcast_weight

    def test_flush_all_sites_makes_estimates_exact_for_small_stream(self):
        protocol = BatchedMisraGriesProtocol(num_sites=3, epsilon=0.5, num_counters=100)
        items = [("a", 5.0), ("b", 1.0), ("a", 2.0), ("c", 4.0)]
        feed(protocol, items)
        protocol.flush_all_sites()
        assert protocol.estimate("a") == pytest.approx(7.0)
        assert protocol.estimate("c") == pytest.approx(4.0)

    def test_custom_counter_count(self):
        protocol = BatchedMisraGriesProtocol(num_sites=2, epsilon=0.1, num_counters=7)
        assert protocol.num_counters == 7

    def test_default_counter_count(self):
        protocol = BatchedMisraGriesProtocol(num_sites=2, epsilon=0.1)
        assert protocol.num_counters == 20

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            BatchedMisraGriesProtocol(num_sites=2, epsilon=0.0)


class TestProtocolP2:
    def test_estimates_within_epsilon_w(self, zipf_sample):
        protocol = ThresholdedUpdatesProtocol(num_sites=10, epsilon=EPSILON)
        feed(protocol, zipf_sample.items)
        budget = EPSILON * zipf_sample.total_weight
        for element, truth in zipf_sample.element_weights.items():
            assert abs(protocol.estimate(element) - truth) <= budget + 1e-6

    def test_total_weight_tracked_within_epsilon(self, zipf_sample):
        protocol = ThresholdedUpdatesProtocol(num_sites=10, epsilon=EPSILON)
        feed(protocol, zipf_sample.items)
        assert abs(protocol.estimated_total_weight() - zipf_sample.total_weight) \
            <= EPSILON * zipf_sample.total_weight + 1e-6

    def test_heavy_hitter_recall(self, zipf_sample):
        protocol = ThresholdedUpdatesProtocol(num_sites=10, epsilon=EPSILON)
        feed(protocol, zipf_sample.items)
        returned = set(protocol.heavy_hitter_elements(0.05))
        for element in zipf_sample.heavy_hitters(0.05):
            assert element in returned

    def test_fewer_messages_than_p1(self, zipf_sample):
        epsilon = 0.01
        p1 = BatchedMisraGriesProtocol(num_sites=10, epsilon=epsilon)
        p2 = ThresholdedUpdatesProtocol(num_sites=10, epsilon=epsilon)
        feed(p1, zipf_sample.items)
        feed(p2, zipf_sample.items)
        assert p2.total_messages < p1.total_messages

    def test_rounds_progress(self, zipf_sample):
        protocol = ThresholdedUpdatesProtocol(num_sites=5, epsilon=0.05)
        feed(protocol, zipf_sample.items)
        assert protocol.rounds_completed >= 1

    def test_space_bounded_variant_still_accurate(self, zipf_sample):
        space = ThresholdedUpdatesProtocol.default_site_space(10, 0.05)
        protocol = ThresholdedUpdatesProtocol(num_sites=10, epsilon=0.05,
                                              site_space=space)
        feed(protocol, zipf_sample.items)
        budget = 2 * 0.05 * zipf_sample.total_weight
        for element in zipf_sample.heavy_hitters(0.05):
            truth = zipf_sample.element_weights[element]
            assert abs(protocol.estimate(element) - truth) <= budget

    def test_default_site_space_formula(self):
        assert ThresholdedUpdatesProtocol.default_site_space(50, 0.1) == 500

    def test_estimates_dictionary(self, zipf_sample):
        protocol = ThresholdedUpdatesProtocol(num_sites=5, epsilon=0.05)
        feed(protocol, zipf_sample.items)
        estimates = protocol.estimates()
        assert estimates
        for element, value in estimates.items():
            assert protocol.estimate(element) == pytest.approx(value)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ThresholdedUpdatesProtocol(num_sites=0, epsilon=0.1)
        with pytest.raises(ValueError):
            ThresholdedUpdatesProtocol(num_sites=2, epsilon=0.1, site_space=0)


class TestP2SpaceSavingMergeSweep:
    """The batched merge-sweep fast path of SpaceSaving-bounded P2 sites."""

    @staticmethod
    def _twin_run(site_space: int, batch_elements, batch_weights):
        import numpy as np

        batched = ThresholdedUpdatesProtocol(num_sites=1, epsilon=0.2,
                                             site_space=site_space)
        batched.process_batch(0, np.asarray(batch_elements),
                              np.asarray(batch_weights, dtype=np.float64))
        replayed = ThresholdedUpdatesProtocol(num_sites=1, epsilon=0.2,
                                              site_space=site_space)
        for element, weight in zip(batch_elements, batch_weights):
            replayed.process(0, element, float(weight))
        return batched, replayed

    def test_no_eviction_batch_takes_fast_path_and_matches(self):
        elements = ["a", "b", "a", "c", "b", "a"]
        weights = [5.0, 1.0, 4.0, 2.0, 3.0, 6.0]
        batched, replayed = self._twin_run(8, elements, weights)
        assert batched.total_messages == replayed.total_messages
        assert batched.message_counts() == replayed.message_counts()
        assert batched.estimates() == replayed.estimates()
        fast = batched._sites[0].sketch
        slow = replayed._sites[0].sketch
        assert fast.to_dict() == pytest.approx(slow.to_dict())
        assert fast.total_weight == pytest.approx(slow.total_weight)

    def test_eviction_risk_falls_back_to_per_item(self):
        # 4 distinct elements through a 3-counter sketch: eviction possible.
        elements = ["a", "b", "c", "d", "a"]
        weights = [5.0, 1.0, 2.0, 7.0, 3.0]
        batched, replayed = self._twin_run(3, elements, weights)
        assert batched.message_counts() == replayed.message_counts()
        assert (batched._sites[0].sketch._counters
                == replayed._sites[0].sketch._counters)

    def test_eviction_predicate(self):
        from repro.sketch.space_saving import WeightedSpaceSaving

        sketch = WeightedSpaceSaving(3)
        sketch.update("a", 1.0)
        sketch.update("b", 1.0)
        may_evict = ThresholdedUpdatesProtocol._sketch_batch_may_evict
        assert not may_evict(sketch, ["a", "b", "c", "a"])   # fits exactly
        assert may_evict(sketch, ["a", "c", "d"])            # 4 > 3 counters

    def test_report_inside_fast_path_rebases_sketch_bookkeeping(self):
        """A batch whose element deltas trigger a report must leave the
        sketch with zero over-counts and a retained-mass total, exactly as
        the per-item rebuild does."""
        batched, replayed = self._twin_run(
            10, ["hot", "cold", "hot", "hot"], [50.0, 1.0, 60.0, 70.0])
        fast, slow = batched._sites[0].sketch, replayed._sites[0].sketch
        assert fast.to_dict() == pytest.approx(slow.to_dict())
        assert fast.total_weight == pytest.approx(slow.total_weight)
        for element in fast.to_dict():
            assert fast.overestimate_of(element) == pytest.approx(
                slow.overestimate_of(element))
