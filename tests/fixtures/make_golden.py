"""Regenerate the golden wire-checkpoint fixtures.

Run from the repository root when (and only when) the checkpoint layout
legitimately changes::

    PYTHONPATH=src python tests/fixtures/make_golden.py

The committed fixtures pin **forward-loadability**: a v1 checkpoint written
by the build that introduced the wire format must keep loading — and keep
answering exactly the recorded answers — in every later build, or CI fails
and the format bump must be made explicit (new ``CHECKPOINT_VERSION`` /
``WIRE_VERSION`` plus a migration note).

Everything recorded is BLAS-free arithmetic (weighted counter sums, priority
sampling, Frobenius accumulation), so the expected answers are exact across
platforms; queries that route through LAPACK/BLAS (covariance products,
SVD) are deliberately not part of the golden record.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import repro
from repro.api import FrobeniusSquared, HeavyHitters, TotalWeight
from repro.api.state import CHECKPOINT_VERSION
from repro.data.synthetic_matrix import make_pamap_like
from repro.data.zipfian import ZipfianStreamGenerator
from repro.streaming.items import WeightedItemBatch

FIXTURES = Path(__file__).parent

HH_SPEC = "hh/P2"
MATRIX_SPEC = "matrix/P3"
CHUNK = 50


def hh_fixture() -> dict:
    generator = ZipfianStreamGenerator(universe_size=200, skew=2.0,
                                       beta=50.0, seed=20140731)
    batch = WeightedItemBatch.from_pairs(generator.generate(1_500).items)
    tracker = repro.Tracker.create(HH_SPEC, num_sites=5, epsilon=0.1,
                                   chunk_size=CHUNK)
    tracker.run(batch[:1_000])  # mid-stream: sites hold pending deltas
    # compress=False on purpose: the fixtures pin forward-loadability of
    # plain base-version frames, independent of the current save defaults.
    tracker.save(FIXTURES / f"hh_p2_v{CHECKPOINT_VERSION}.ckpt",
                 compress=False)
    hitters = tracker.query(HeavyHitters(phi=0.05))
    total = tracker.query(TotalWeight())
    return {
        "spec": HH_SPEC,
        "file": f"hh_p2_v{CHECKPOINT_VERSION}.ckpt",
        "items_processed": tracker.items_processed,
        "message_counts": tracker.protocol.message_counts(),
        "heavy_hitters": [
            {"element": int(hitter.element),
             "estimated_weight": hitter.estimated_weight}
            for hitter in hitters.hitters
        ],
        "hh_error_bound": hitters.error_bound,
        "total_weight_estimate": total.estimate,
    }


def matrix_fixture() -> dict:
    dataset = make_pamap_like(num_rows=600, seed=11)
    tracker = repro.Tracker.create(MATRIX_SPEC, num_sites=5, epsilon=0.2,
                                   dimension=dataset.dimension,
                                   sample_size=80, seed=7, chunk_size=CHUNK)
    tracker.run(dataset.rows[:400])
    tracker.save(FIXTURES / f"matrix_p3_v{CHECKPOINT_VERSION}.ckpt",
                 compress=False)
    frobenius = tracker.query(FrobeniusSquared())
    return {
        "spec": MATRIX_SPEC,
        "file": f"matrix_p3_v{CHECKPOINT_VERSION}.ckpt",
        "items_processed": tracker.items_processed,
        "message_counts": tracker.protocol.message_counts(),
        "frobenius_estimate": frobenius.estimate,
        "frobenius_error_bound": frobenius.error_bound,
    }


def _frame_version(name: str) -> int:
    """The wire version actually stamped on a written fixture's header."""
    header = (FIXTURES / name).read_bytes()[:6]
    (version,) = struct.unpack_from("<H", header, 4)
    return version


def main() -> None:
    hh = hh_fixture()
    matrix = matrix_fixture()
    wire_version = max(_frame_version(hh["file"]),
                       _frame_version(matrix["file"]))
    golden = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "wire_version": wire_version,
        "hh": hh,
        "matrix": matrix,
    }
    with open(FIXTURES / "golden_answers.json", "w") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
    print(f"wrote fixtures for checkpoint v{CHECKPOINT_VERSION} "
          f"/ wire v{wire_version} under {FIXTURES}")


if __name__ == "__main__":
    main()
