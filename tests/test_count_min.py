"""Unit tests for the Count-Min sketch."""

from __future__ import annotations

import pytest

from repro.sketch.count_min import CountMinSketch


class TestCountMin:
    def test_never_underestimates(self, zipf_sample):
        sketch = CountMinSketch(width=200, depth=4, seed=1)
        sketch.update_many(zipf_sample.items)
        for element, truth in zipf_sample.element_weights.items():
            assert sketch.estimate(element) + 1e-9 >= truth

    def test_overcount_within_expected_bound(self, zipf_sample):
        sketch = CountMinSketch(width=400, depth=5, seed=2)
        sketch.update_many(zipf_sample.items)
        # The e/width bound holds in expectation per row and with high
        # probability over the depth; allow a 3x slack for the test.
        bound = 3.0 * 2.718281828 * zipf_sample.total_weight / 400
        violations = sum(
            1 for element, truth in zipf_sample.element_weights.items()
            if sketch.estimate(element) - truth > bound
        )
        assert violations == 0

    def test_unseen_element_small_estimate(self, zipf_sample):
        sketch = CountMinSketch(width=500, depth=4, seed=3)
        sketch.update_many(zipf_sample.items)
        assert sketch.estimate("never-seen") <= sketch.error_bound() * 3

    def test_total_weight(self):
        sketch = CountMinSketch(width=16, depth=2, seed=0)
        sketch.update("a", 2.0)
        sketch.update("b", 3.0)
        assert sketch.total_weight == pytest.approx(5.0)

    def test_from_error_sizes(self):
        sketch = CountMinSketch.from_error(0.01, delta=0.01, seed=0)
        assert sketch.width >= 270
        assert sketch.depth >= 4

    def test_from_error_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch.from_error(0.0)
        with pytest.raises(ValueError):
            CountMinSketch.from_error(0.1, delta=1.5)

    def test_rejects_invalid_weight(self):
        sketch = CountMinSketch(width=8, depth=2, seed=0)
        with pytest.raises(ValueError):
            sketch.update("a", 0.0)

    def test_deterministic_given_seed(self):
        first = CountMinSketch(width=32, depth=3, seed=9)
        second = CountMinSketch(width=32, depth=3, seed=9)
        for element, weight in [("a", 2.0), ("b", 1.0), ("c", 5.0)]:
            first.update(element, weight)
            second.update(element, weight)
        assert first.estimate("a") == second.estimate("a")

    def test_to_dict_contains_seen_elements(self):
        sketch = CountMinSketch(width=32, depth=3, seed=4)
        sketch.update("x", 1.0)
        sketch.update("y", 2.0)
        estimates = sketch.to_dict()
        assert set(estimates) == {"x", "y"}

    def test_heavy_hitters(self, zipf_sample):
        sketch = CountMinSketch(width=1000, depth=5, seed=5)
        sketch.update_many(zipf_sample.items)
        truth = set(zipf_sample.heavy_hitters(0.05))
        returned = {element for element, _ in sketch.heavy_hitters(0.05)}
        assert truth <= returned


class TestCountMinMerge:
    def test_merge_adds_counts(self):
        first = CountMinSketch(width=64, depth=3, seed=7)
        second = CountMinSketch(width=64, depth=3, seed=7)
        # Merging requires identical hash functions: construct second from the
        # same seed and verify layout equality through a successful merge.
        second._hash_a = first._hash_a.copy()
        second._hash_b = first._hash_b.copy()
        first.update("a", 2.0)
        second.update("a", 3.0)
        merged = first.merge(second)
        assert merged.estimate("a") >= 5.0 - 1e-9
        assert merged.total_weight == pytest.approx(5.0)

    def test_merge_rejects_different_layout(self):
        with pytest.raises(ValueError):
            CountMinSketch(32, 3, seed=1).merge(CountMinSketch(64, 3, seed=1))

    def test_merge_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            CountMinSketch(32, 3, seed=1).merge(42)
