"""Unit tests for the weighted SpaceSaving sketch."""

from __future__ import annotations

import pytest

from repro.sketch.space_saving import WeightedSpaceSaving


class TestSpaceSaving:
    def test_exact_when_under_capacity(self):
        sketch = WeightedSpaceSaving(num_counters=10)
        sketch.update("a", 4.0)
        sketch.update("b", 2.0)
        sketch.update("a", 1.0)
        assert sketch.estimate("a") == pytest.approx(5.0)
        assert sketch.overestimate_of("a") == 0.0
        assert sketch.guaranteed_weight("a") == pytest.approx(5.0)

    def test_estimates_never_underestimate_retained(self, zipf_sample):
        sketch = WeightedSpaceSaving(num_counters=25)
        sketch.update_many(zipf_sample.items)
        for element, estimate in sketch.to_dict().items():
            truth = zipf_sample.element_weights[element]
            assert estimate + 1e-9 >= truth - sketch.overestimate_of(element)
            assert estimate >= 0.0

    def test_overcount_bounded_by_w_over_l(self, zipf_sample):
        num_counters = 25
        sketch = WeightedSpaceSaving(num_counters=num_counters)
        sketch.update_many(zipf_sample.items)
        bound = zipf_sample.total_weight / num_counters
        for element, estimate in sketch.to_dict().items():
            truth = zipf_sample.element_weights[element]
            assert estimate - truth <= bound + 1e-9

    def test_heavy_elements_are_retained(self, zipf_sample):
        num_counters = 40
        sketch = WeightedSpaceSaving(num_counters=num_counters)
        sketch.update_many(zipf_sample.items)
        retained = set(sketch.to_dict())
        threshold = zipf_sample.total_weight / num_counters
        for element, weight in zipf_sample.element_weights.items():
            if weight > threshold:
                assert element in retained

    def test_capacity_never_exceeded(self, zipf_sample):
        sketch = WeightedSpaceSaving(num_counters=6)
        for element, weight in zipf_sample.items:
            sketch.update(element, weight)
            assert len(sketch) <= 6

    def test_total_weight(self):
        sketch = WeightedSpaceSaving(num_counters=2)
        sketch.update("x", 1.5)
        sketch.update("y", 2.5)
        sketch.update("z", 3.0)
        assert sketch.total_weight == pytest.approx(7.0)

    def test_eviction_inherits_counter(self):
        sketch = WeightedSpaceSaving(num_counters=1)
        sketch.update("a", 5.0)
        sketch.update("b", 1.0)
        # b evicted a and inherited its counter value.
        assert sketch.estimate("b") == pytest.approx(6.0)
        assert sketch.overestimate_of("b") == pytest.approx(5.0)
        assert sketch.guaranteed_weight("b") == pytest.approx(1.0)
        assert sketch.estimate("a") == 0.0

    def test_from_epsilon(self):
        assert WeightedSpaceSaving.from_epsilon(0.05).num_counters == 20
        with pytest.raises(ValueError):
            WeightedSpaceSaving.from_epsilon(0.0)

    def test_rejects_invalid_weight(self):
        sketch = WeightedSpaceSaving(num_counters=2)
        with pytest.raises(ValueError):
            sketch.update("a", -1.0)

    def test_error_bound_value(self):
        sketch = WeightedSpaceSaving(num_counters=4)
        sketch.update("a", 8.0)
        assert sketch.error_bound() == pytest.approx(2.0)


class TestSpaceSavingMerge:
    def test_merge_totals(self, zipf_sample):
        half = len(zipf_sample.items) // 2
        left = WeightedSpaceSaving(num_counters=20)
        right = WeightedSpaceSaving(num_counters=20)
        left.update_many(zipf_sample.items[:half])
        right.update_many(zipf_sample.items[half:])
        merged = left.merge(right)
        assert merged.total_weight == pytest.approx(zipf_sample.total_weight)
        assert len(merged) <= 20

    def test_merge_error_bound(self, zipf_sample):
        num_counters = 30
        half = len(zipf_sample.items) // 2
        left = WeightedSpaceSaving(num_counters=num_counters)
        right = WeightedSpaceSaving(num_counters=num_counters)
        left.update_many(zipf_sample.items[:half])
        right.update_many(zipf_sample.items[half:])
        merged = left.merge(right)
        bound = 2.0 * zipf_sample.total_weight / num_counters
        for element, estimate in merged.to_dict().items():
            truth = zipf_sample.element_weights.get(element, 0.0)
            assert estimate - truth <= bound + 1e-9

    def test_merge_requires_same_size(self):
        with pytest.raises(ValueError):
            WeightedSpaceSaving(2).merge(WeightedSpaceSaving(3))

    def test_merge_requires_same_type(self):
        with pytest.raises(TypeError):
            WeightedSpaceSaving(2).merge("not a sketch")

    def test_merged_two_sided_guarantee(self, zipf_sample):
        """The standard merged guarantee: per retained element the over-count
        is certified by ``overestimate_of`` and the under-count (mass lost
        where the other summary had evicted the element) is at most the
        combined ``(W₁+W₂)/ℓ``."""
        num_counters = 25
        half = len(zipf_sample.items) // 2
        left = WeightedSpaceSaving(num_counters=num_counters)
        right = WeightedSpaceSaving(num_counters=num_counters)
        left.update_many(zipf_sample.items[:half])
        right.update_many(zipf_sample.items[half:])
        merged = left.merge(right)
        combined_bound = zipf_sample.total_weight / num_counters
        for element, estimate in merged.to_dict().items():
            truth = zipf_sample.element_weights.get(element, 0.0)
            assert estimate - truth <= merged.overestimate_of(element) + 1e-9
            assert truth - estimate <= combined_bound + 1e-9

    def test_merge_in_place_matches_merge(self, zipf_sample):
        half = len(zipf_sample.items) // 2
        left = WeightedSpaceSaving(num_counters=15)
        right = WeightedSpaceSaving(num_counters=15)
        left.update_many(zipf_sample.items[:half])
        right.update_many(zipf_sample.items[half:])
        merged = left.merge(right)
        left.merge_in_place(right)
        assert left.to_dict() == merged.to_dict()
        assert left.total_weight == pytest.approx(merged.total_weight)

    def test_from_counters_round_trips_state(self):
        original = WeightedSpaceSaving(num_counters=3)
        for element, weight in [("a", 5.0), ("b", 2.0), ("c", 1.0), ("d", 4.0)]:
            original.update(element, weight)
        rebuilt = WeightedSpaceSaving.from_counters(
            3, original._counters, original.total_weight)
        assert rebuilt.to_dict() == original.to_dict()
        assert rebuilt.total_weight == original.total_weight
        assert rebuilt.overestimate_of("d") == original.overestimate_of("d")

    def test_from_counters_rejects_overfull_maps(self):
        with pytest.raises(ValueError, match="capacity"):
            WeightedSpaceSaving.from_counters(
                1, {"a": (1.0, 0.0), "b": (2.0, 0.0)}, 3.0)
