"""Property-based tests (hypothesis) for the sketch substrates.

These check the paper-level invariants of each summary on arbitrary small
weighted streams and matrices rather than on fixed examples:

* Misra–Gries: never overestimates; underestimate bounded by ``W/ℓ``;
  merging preserves both properties.
* SpaceSaving: never underestimates retained elements beyond the tracked
  over-count; over-count bounded by ``W/ℓ``.
* Frequent Directions: ``0 ≤ ‖Ax‖² − ‖Bx‖² ≤ 2‖A‖²_F/ℓ`` for arbitrary
  matrices and directions; squared Frobenius norm tracked exactly.
* Priority sampling: adjusted weights are at least the raw weights of the
  retained items and the retained set size is bounded.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.frequent_directions import FrequentDirections
from repro.sketch.misra_gries import WeightedMisraGries
from repro.sketch.priority_sampler import PrioritySample
from repro.sketch.space_saving import WeightedSpaceSaving

# Streams of (element, weight) pairs over a small universe with weights in [1, 50].
weighted_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=20),
              st.floats(min_value=1.0, max_value=50.0, allow_nan=False,
                        allow_infinity=False)),
    min_size=1, max_size=200,
)

small_matrices = st.integers(min_value=1, max_value=60).flatmap(
    lambda rows: st.integers(min_value=1, max_value=6).flatmap(
        lambda cols: st.lists(
            st.lists(st.floats(min_value=-10.0, max_value=10.0,
                               allow_nan=False, allow_infinity=False),
                     min_size=cols, max_size=cols),
            min_size=rows, max_size=rows,
        )
    )
)


def exact_counts(stream):
    counts = {}
    for element, weight in stream:
        counts[element] = counts.get(element, 0.0) + weight
    return counts


class TestMisraGriesProperties:
    @given(stream=weighted_streams, counters=st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_estimates_bracketed(self, stream, counters):
        sketch = WeightedMisraGries(num_counters=counters)
        sketch.update_many(stream)
        truth = exact_counts(stream)
        total = sum(weight for _, weight in stream)
        for element, weight in truth.items():
            estimate = sketch.estimate(element)
            assert estimate <= weight + 1e-6
            assert weight - estimate <= total / counters + 1e-6

    @given(stream=weighted_streams, counters=st.integers(min_value=1, max_value=8),
           split=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_merge_preserves_guarantee(self, stream, counters, split):
        cut = int(len(stream) * split)
        left = WeightedMisraGries(num_counters=counters)
        right = WeightedMisraGries(num_counters=counters)
        left.update_many(stream[:cut])
        right.update_many(stream[cut:])
        merged = left.merge(right)
        truth = exact_counts(stream)
        total = sum(weight for _, weight in stream)
        assert merged.total_weight == np.float64(total) or abs(
            merged.total_weight - total) < 1e-6
        for element, weight in truth.items():
            estimate = merged.estimate(element)
            assert estimate <= weight + 1e-6
            assert weight - estimate <= total / counters + 1e-6


class TestSpaceSavingProperties:
    @given(stream=weighted_streams, counters=st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_overestimates_bounded(self, stream, counters):
        sketch = WeightedSpaceSaving(num_counters=counters)
        sketch.update_many(stream)
        truth = exact_counts(stream)
        total = sum(weight for _, weight in stream)
        for element, estimate in sketch.to_dict().items():
            true_weight = truth.get(element, 0.0)
            assert estimate + 1e-6 >= true_weight
            assert estimate - true_weight <= total / counters + 1e-6
            assert sketch.guaranteed_weight(element) <= true_weight + 1e-6


class TestFrequentDirectionsProperties:
    @given(matrix=small_matrices, sketch_size=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_liberty_bound(self, matrix, sketch_size, seed):
        array = np.asarray(matrix, dtype=np.float64)
        sketch = FrequentDirections(dimension=array.shape[1], sketch_size=sketch_size)
        sketch.update_many(array)
        frobenius = float(np.sum(array ** 2))
        assert abs(sketch.squared_frobenius - frobenius) <= 1e-6 * max(1.0, frobenius)
        rng = np.random.default_rng(seed)
        b = sketch.sketch_matrix()
        for _ in range(5):
            x = rng.standard_normal(array.shape[1])
            norm = np.linalg.norm(x)
            if norm == 0:
                continue
            x = x / norm
            true = float(np.linalg.norm(array @ x) ** 2)
            approx = float(np.linalg.norm(b @ x) ** 2) if b.size else 0.0
            assert true - approx >= -1e-6 * max(1.0, true)
            assert true - approx <= 2.0 * frobenius / sketch_size + 1e-6


class TestPrioritySampleProperties:
    @given(stream=weighted_streams, sample_size=st.integers(min_value=1, max_value=30),
           seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_sample_size_and_adjusted_weights(self, stream, sample_size, seed):
        sampler = PrioritySample(sample_size=sample_size, seed=seed)
        for element, weight in stream:
            sampler.update(element, weight)
        sample = sampler.sample()
        assert len(sample) <= min(sample_size + 1, len(stream))
        tau = sampler.threshold()
        for item in sample:
            assert item.adjusted_weight(tau) >= item.weight - 1e-9
        # The total-weight estimate is non-negative and zero only for empty input.
        assert sampler.estimate_total_weight() > 0.0
