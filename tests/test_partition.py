"""Unit tests for stream partitioners."""

from __future__ import annotations

import collections

import pytest

from repro.streaming.items import WeightedItem
from repro.streaming.partition import (
    BlockPartitioner,
    HashPartitioner,
    RoundRobinPartitioner,
    UniformRandomPartitioner,
)


class TestRoundRobin:
    def test_cycles_through_sites(self):
        partitioner = RoundRobinPartitioner(num_sites=3)
        assignments = [partitioner.assign(index, None) for index in range(7)]
        assert assignments == [0, 1, 2, 0, 1, 2, 0]

    def test_partition_yields_pairs(self):
        partitioner = RoundRobinPartitioner(num_sites=2)
        pairs = list(partitioner.partition(["a", "b", "c"]))
        assert pairs == [(0, "a"), (1, "b"), (0, "c")]

    def test_invalid_site_count(self):
        with pytest.raises(ValueError):
            RoundRobinPartitioner(num_sites=0)


class TestUniformRandom:
    def test_in_range_and_roughly_balanced(self):
        partitioner = UniformRandomPartitioner(num_sites=4, seed=0)
        counts = collections.Counter(
            partitioner.assign(index, None) for index in range(4000)
        )
        assert set(counts) <= {0, 1, 2, 3}
        for site in range(4):
            assert 800 <= counts[site] <= 1200

    def test_deterministic_given_seed(self):
        first = UniformRandomPartitioner(num_sites=5, seed=3)
        second = UniformRandomPartitioner(num_sites=5, seed=3)
        assert [first.assign(i, None) for i in range(50)] == [
            second.assign(i, None) for i in range(50)
        ]


class TestHashPartitioner:
    def test_same_element_same_site(self):
        partitioner = HashPartitioner(num_sites=7)
        assert partitioner.assign(0, "elephant") == partitioner.assign(99, "elephant")

    def test_key_extraction_from_tuple_and_item(self):
        partitioner = HashPartitioner(num_sites=5)
        tuple_site = partitioner.assign(0, ("label", 3.0))
        item_site = partitioner.assign(1, WeightedItem(element="label", weight=1.0))
        plain_site = partitioner.assign(2, "label")
        assert tuple_site == item_site == plain_site

    def test_custom_key(self):
        partitioner = HashPartitioner(num_sites=3, key=lambda item: item["user"])
        first = partitioner.assign(0, {"user": "alice", "bytes": 10})
        second = partitioner.assign(1, {"user": "alice", "bytes": 99})
        assert first == second


class TestBlockPartitioner:
    def test_contiguous_blocks(self):
        partitioner = BlockPartitioner(num_sites=3, stream_length=9)
        assignments = [partitioner.assign(index, None) for index in range(9)]
        assert assignments == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_overflow_clamps_to_last_site(self):
        partitioner = BlockPartitioner(num_sites=2, stream_length=4)
        assert partitioner.assign(10, None) == 1

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            BlockPartitioner(num_sites=2, stream_length=0)
