"""Unit tests for stream partitioners."""

from __future__ import annotations

import collections

import pytest

from repro.streaming.items import WeightedItem
from repro.streaming.partition import (
    BlockPartitioner,
    HashPartitioner,
    RoundRobinPartitioner,
    UniformRandomPartitioner,
)


class TestRoundRobin:
    def test_cycles_through_sites(self):
        partitioner = RoundRobinPartitioner(num_sites=3)
        assignments = [partitioner.assign(index, None) for index in range(7)]
        assert assignments == [0, 1, 2, 0, 1, 2, 0]

    def test_partition_yields_pairs(self):
        partitioner = RoundRobinPartitioner(num_sites=2)
        pairs = list(partitioner.partition(["a", "b", "c"]))
        assert pairs == [(0, "a"), (1, "b"), (0, "c")]

    def test_invalid_site_count(self):
        with pytest.raises(ValueError):
            RoundRobinPartitioner(num_sites=0)


class TestUniformRandom:
    def test_in_range_and_roughly_balanced(self):
        partitioner = UniformRandomPartitioner(num_sites=4, seed=0)
        counts = collections.Counter(
            partitioner.assign(index, None) for index in range(4000)
        )
        assert set(counts) <= {0, 1, 2, 3}
        for site in range(4):
            assert 800 <= counts[site] <= 1200

    def test_deterministic_given_seed(self):
        first = UniformRandomPartitioner(num_sites=5, seed=3)
        second = UniformRandomPartitioner(num_sites=5, seed=3)
        assert [first.assign(i, None) for i in range(50)] == [
            second.assign(i, None) for i in range(50)
        ]


class TestHashPartitioner:
    def test_same_element_same_site(self):
        partitioner = HashPartitioner(num_sites=7)
        assert partitioner.assign(0, "elephant") == partitioner.assign(99, "elephant")

    def test_key_extraction_from_tuple_and_item(self):
        partitioner = HashPartitioner(num_sites=5)
        tuple_site = partitioner.assign(0, ("label", 3.0))
        item_site = partitioner.assign(1, WeightedItem(element="label", weight=1.0))
        plain_site = partitioner.assign(2, "label")
        assert tuple_site == item_site == plain_site

    def test_custom_key(self):
        partitioner = HashPartitioner(num_sites=3, key=lambda item: item["user"])
        first = partitioner.assign(0, {"user": "alice", "bytes": 10})
        second = partitioner.assign(1, {"user": "alice", "bytes": 99})
        assert first == second


class TestBlockPartitioner:
    def test_contiguous_blocks(self):
        partitioner = BlockPartitioner(num_sites=3, stream_length=9)
        assignments = [partitioner.assign(index, None) for index in range(9)]
        assert assignments == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_overflow_clamps_to_last_site(self):
        partitioner = BlockPartitioner(num_sites=2, stream_length=4)
        assert partitioner.assign(10, None) == 1

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            BlockPartitioner(num_sites=2, stream_length=0)


class TestBatchAssignmentDeterminism:
    """Satellite guarantees: same seed => same assignments, item and batch paths agree."""

    def test_round_robin_batch_matches_item_path(self):
        partitioner = RoundRobinPartitioner(num_sites=3)
        indices = list(range(17))
        batch = partitioner.assign_batch(indices, [None] * 17)
        assert list(batch) == [partitioner.assign(i, None) for i in indices]

    def test_uniform_random_same_seed_same_assignment_item_path(self):
        first = UniformRandomPartitioner(num_sites=7, seed=42)
        second = UniformRandomPartitioner(num_sites=7, seed=42)
        assert [first.assign(i, None) for i in range(200)] == [
            second.assign(i, None) for i in range(200)
        ]

    def test_uniform_random_batch_path_matches_item_path(self):
        # The documented contract: a seeded partitioner consumes its generator
        # identically through assign() and assign_batch().
        item_path = UniformRandomPartitioner(num_sites=7, seed=42)
        batch_path = UniformRandomPartitioner(num_sites=7, seed=42)
        expected = [item_path.assign(i, None) for i in range(500)]
        got = batch_path.assign_batch(list(range(500)), [None] * 500)
        assert list(got) == expected

    def test_uniform_random_mixed_consumption_stays_deterministic(self):
        # Interleaving item and batch draws must equal pure item draws.
        reference = UniformRandomPartitioner(num_sites=5, seed=9)
        mixed = UniformRandomPartitioner(num_sites=5, seed=9)
        expected = [reference.assign(i, None) for i in range(30)]
        got = [mixed.assign(0, None)]
        got.extend(mixed.assign_batch(list(range(1, 20)), [None] * 19).tolist())
        got.extend(mixed.assign(i, None) for i in range(20, 30))
        assert got == expected

    def test_hash_batch_path_matches_item_path(self):
        partitioner = HashPartitioner(num_sites=11)
        items = [WeightedItem(element=f"user-{i % 13}", weight=1.0) for i in range(50)]
        batch = partitioner.assign_batch(list(range(50)), items)
        assert list(batch) == [partitioner.assign(i, item)
                               for i, item in enumerate(items)]

    def test_hash_batch_path_on_columnar_batch(self):
        from repro.streaming.items import WeightedItemBatch

        partitioner = HashPartitioner(num_sites=11)
        pairs = [(f"user-{i % 13}", 1.0) for i in range(50)]
        batch = WeightedItemBatch.from_pairs(pairs)
        got = partitioner.assign_batch(list(range(50)), batch)
        assert list(got) == [partitioner.assign(i, element)
                             for i, (element, _) in enumerate(pairs)]

    def test_hash_same_seed_same_assignment_across_instances(self):
        first = HashPartitioner(num_sites=5)
        second = HashPartitioner(num_sites=5)
        elements = [f"k{i}" for i in range(40)]
        assert [first.assign(i, e) for i, e in enumerate(elements)] == [
            second.assign(i, e) for i, e in enumerate(elements)
        ]

    def test_block_batch_matches_item_path(self):
        partitioner = BlockPartitioner(num_sites=4, stream_length=10)
        indices = list(range(15))  # includes overflow past stream_length
        batch = partitioner.assign_batch(indices, [None] * 15)
        assert list(batch) == [partitioner.assign(i, None) for i in indices]
