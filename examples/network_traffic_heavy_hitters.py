#!/usr/bin/env python
"""Distributed network-traffic monitoring with weighted heavy hitters.

The weighted heavy-hitters problem of Section 4 is exactly the "total bytes
per destination" monitoring task: each router (site) observes packets
``(destination, bytes)`` and the network operations centre (coordinator) must
continuously know every destination receiving more than a φ fraction of all
traffic — without streaming every packet to the centre.

This example simulates ``m`` routers observing traffic with a few genuinely
hot destinations, a mid-stream traffic shift (a new flow becomes hot, an old
one cools down), and compares three protocol specs on the same packet trace:

* ``hh/P1`` (batched Misra–Gries summaries),
* ``hh/P2`` (per-destination threshold updates),
* ``hh/P4`` (randomized reporting).

Each protocol runs as a ``repro.Tracker`` session with a
:class:`~repro.streaming.partition.HashPartitioner`, so all traffic of a flow
is seen at one ingress router — the hardest case for global aggregation.

Run with:  python examples/network_traffic_heavy_hitters.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.api import HeavyHitters
from repro.evaluation import evaluate_heavy_hitter_protocol, exact_heavy_hitters, format_table
from repro.streaming import HashPartitioner, WeightedItemBatch

NUM_ROUTERS = 30
EPSILON = 0.01
PHI = 0.05
PACKETS_PER_PHASE = 25_000
MAX_PACKET_BYTES = 1_500.0


def generate_trace(rng: np.random.Generator):
    """Generate a two-phase packet trace with shifting hot destinations."""
    destinations = [f"10.0.{i // 256}.{i % 256}" for i in range(2_000)]
    packets = []
    for phase in range(2):
        # Hot set: three destinations taking most of the traffic; the hot set
        # changes between phases (flow churn).
        hot = [destinations[3 * phase + offset] for offset in range(3)]
        for _ in range(PACKETS_PER_PHASE):
            if rng.uniform() < 0.6:
                destination = hot[rng.integers(0, len(hot))]
                size = rng.uniform(900.0, MAX_PACKET_BYTES)
            else:
                destination = destinations[int(rng.integers(0, len(destinations)))]
                size = rng.uniform(40.0, 600.0)
            packets.append((destination, float(size)))
    return packets


def main() -> None:
    rng = np.random.default_rng(7)
    packets = generate_trace(rng)
    exact_bytes = {}
    for destination, size in packets:
        exact_bytes[destination] = exact_bytes.get(destination, 0.0) + size
    total_bytes = sum(exact_bytes.values())
    trace = WeightedItemBatch.from_pairs(packets)

    rows = []
    trackers = {}
    for spec in ("hh/P1", "hh/P2", "hh/P4"):
        params = {"num_sites": NUM_ROUTERS, "epsilon": EPSILON}
        if spec == "hh/P4":
            params["seed"] = 0  # only the randomized protocol takes a seed
        tracker = repro.Tracker.create(
            spec, partitioner=HashPartitioner(NUM_ROUTERS), **params)
        tracker.run(trace)
        trackers[spec] = tracker
        evaluation = evaluate_heavy_hitter_protocol(
            tracker.protocol, exact_bytes, PHI, total_weight=total_bytes,
            name=spec)
        rows.append({
            "protocol": spec,
            "recall": evaluation.recall,
            "precision": evaluation.precision,
            "avg rel err": evaluation.average_error,
            "messages": evaluation.messages,
            "packets": len(packets),
        })

    print(f"{len(packets)} packets across {NUM_ROUTERS} routers, "
          f"phi = {PHI}, epsilon = {EPSILON}\n")
    print(format_table(rows, title="Heavy-hitter tracking on the packet trace"))

    truth = exact_heavy_hitters(exact_bytes, PHI, total_bytes)
    print("\nTrue heavy destinations (by byte share):")
    for destination in truth:
        share = exact_bytes[destination] / total_bytes
        print(f"  {destination:15s} {share:6.1%}")

    answer = trackers["hh/P2"].query(HeavyHitters(phi=PHI))
    print(f"\nDestinations reported by hh/P2 "
          f"(additive bound {answer.error_bound:,.0f} bytes):")
    for hitter in answer.hitters:
        print(f"  {str(hitter.element):15s} {hitter.relative_weight:6.1%} (estimated)")


if __name__ == "__main__":
    main()
