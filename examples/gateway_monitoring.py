#!/usr/bin/env python
"""Live service monitoring through the HTTP/JSON serving gateway.

The serving story end to end: a :class:`repro.Gateway` fronts one sharded
``hh/P2`` tracking session, and everything else in the example talks to it
the way real dashboards and agents would — over plain HTTP with stdlib
``urllib``, no repro import on the client side required.

Three concurrent ingest "agents" (think per-datacenter log shippers) POST
batches of ``(endpoint, latency_ms)`` observations to ``/v1/push`` with
nothing but ``urllib``, then a dashboard loop polls
``GET /v1/query/heavy_hitters`` and ``/v1/stats`` through the ETag-aware
:class:`~repro.gateway.GatewayClient`: the first poll pays the full
fan-out, every repeat between pushes revalidates its ``ETag`` with
``If-None-Match`` and is answered ``304 Not Modified`` straight from the
client-side document cache (``client.not_modified`` counts them), and the
first push afterwards moves the ingest epoch so the next poll gets a
fresh answer.  One poll passes ``?partial=true`` — the degraded-mode flag
that lets a dashboard keep rendering from the reachable shards if part of
the cluster is down — and the example prints the ``partial`` /
``missing_shards`` fields that come back (partial answers are never
cached or tagged).  At the end the session is checkpointed through
``POST /v1/checkpoint`` and one typed query shows ``GatewayClient``
re-hydrating a real ``Answer`` object via ``Answer.from_dict``.

Run with:  python examples/gateway_monitoring.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

import repro
from repro.gateway import GatewayClient

AUTH_TOKEN = "dashboard-secret"
NUM_AGENTS = 3
BATCHES_PER_AGENT = 8
OBSERVATIONS_PER_BATCH = 400
PHI = 0.05
DASHBOARD_POLLS = 6

# A handful of genuinely expensive endpoints among a long tail.
ENDPOINTS = [f"/api/v2/resource/{index}" for index in range(200)]
HOT_ENDPOINTS = ["/api/v2/search", "/api/v2/checkout", "/api/v2/export"]


def http_json(url: str, payload=None, method: str = "GET"):
    """One authenticated JSON round-trip with nothing but urllib."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Authorization": f"Bearer {AUTH_TOKEN}",
                 "Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def ingest_agent(base_url: str, agent: int, rng: np.random.Generator) -> int:
    """POST latency observations to /v1/push; returns items accepted."""
    accepted = 0
    for _ in range(BATCHES_PER_AGENT):
        items = []
        for _ in range(OBSERVATIONS_PER_BATCH):
            if rng.uniform() < 0.5:
                endpoint = HOT_ENDPOINTS[rng.integers(len(HOT_ENDPOINTS))]
                latency = float(rng.gamma(8.0, 40.0))  # slow endpoints
            else:
                endpoint = ENDPOINTS[rng.integers(len(ENDPOINTS))]
                latency = float(rng.gamma(2.0, 10.0))
            items.append([endpoint, latency])
        reply = http_json(f"{base_url}/v1/push", {"items": items},
                          method="POST")
        accepted += reply["accepted"]
    return accepted


def main() -> None:
    cluster = repro.ShardedTracker.create("hh/P2", shards=2, backend="thread",
                                          num_sites=12, epsilon=0.02)
    with repro.Gateway(cluster, auth_token=AUTH_TOKEN) as gateway:
        base_url = gateway.url
        print(f"gateway serving hh/P2 at {base_url}")
        health = http_json(f"{base_url}/v1/healthz")
        print(f"healthz: status={health['status']} spec={health['spec']} "
              f"shards={health['shards']}\n")

        # Concurrent ingest: one thread per log-shipping agent, all POSTing
        # through the gateway's single-writer queue.
        totals = [0] * NUM_AGENTS
        threads = []
        for agent in range(NUM_AGENTS):
            rng = np.random.default_rng(2014 + agent)

            def run(agent=agent, rng=rng):
                totals[agent] = ingest_agent(base_url, agent, rng)

            thread = threading.Thread(target=run, name=f"agent-{agent}")
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        print(f"{NUM_AGENTS} agents pushed {sum(totals)} observations "
              f"({totals} per agent)")

        # The dashboard's view: which endpoints dominate total latency?
        # Polled through the ETag-aware client — the first poll pays the
        # full shard fan-out, every repeat between pushes revalidates with
        # If-None-Match and is answered 304 from the client's own cache.
        client = GatewayClient(base_url, auth_token=AUTH_TOKEN)
        for _ in range(DASHBOARD_POLLS):
            answer = client.query("heavy_hitters", {"phi": PHI})
        print(f"\n{DASHBOARD_POLLS} dashboard polls: "
              f"{client.not_modified} answered 304 Not Modified "
              "(ETag revalidation, zero gateway fan-outs)")
        assert client.not_modified == DASHBOARD_POLLS - 1, client.not_modified
        print(f"\nEndpoints above {PHI:.0%} of total latency "
              f"(error bound {answer['error_bound']:.4g}):")
        for hitter in answer["estimate"]:
            print(f"  {hitter['element']:<24} share "
                  f"{hitter['relative_weight']:.3f}")
        hot_found = {hitter["element"] for hitter in answer["estimate"]}
        assert set(HOT_ENDPOINTS) <= hot_found, (HOT_ENDPOINTS, hot_found)

        # One straggler batch moves the ingest epoch: the next poll's
        # validator no longer matches, so the gateway re-evaluates and the
        # client caches the fresh answer under the new ETag.
        polls_before = client.not_modified
        client.push(items=[["/api/v2/export", 500.0]])
        refreshed = client.query("heavy_hitters", {"phi": PHI})
        assert client.not_modified == polls_before, \
            "a post-push poll must not be served 304"
        assert refreshed["items_processed"] == answer["items_processed"] + 1
        print("post-push poll re-evaluated (epoch moved, ETag rotated): "
              f"{answer['items_processed']} -> "
              f"{refreshed['items_processed']} items behind the answer")

        # Degraded-mode poll: partial=true keeps the dashboard rendering
        # even if shards are unreachable; here the cluster is healthy, so
        # the reply says so explicitly.
        degraded = http_json(
            f"{base_url}/v1/query/heavy_hitters?phi={PHI}&partial=true")
        print(f"\npartial=true poll: partial={degraded['partial']} "
              f"missing_shards={degraded.get('missing_shards', ())} "
              f"(all shards reachable)")

        stats = client.stats()
        print(f"stats: {stats['items_processed']} items over "
              f"{stats['shards']} shards at ingest epoch "
              f"{stats['ingest_epoch']}, "
              f"{stats['total_messages']} protocol messages "
              "(site-to-coordinator traffic the protocol saved vs "
              "forwarding every observation)")

        with tempfile.TemporaryDirectory() as tmp:
            checkpoint = str(Path(tmp) / "monitoring.ckpt")
            saved = http_json(f"{base_url}/v1/checkpoint",
                              {"path": checkpoint}, method="POST")
            print(f"checkpointed {saved['spec']} to {saved['saved']}")

        # Typed client: GatewayClient.typed_query returns a real Answer
        # object (Answer.from_dict), so downstream code can keep using the
        # library types it already knows — and it rides the same
        # conditional-GET path as the raw document polls.
        typed = client.typed_query("total_weight")
        client.close()
        print(f"\ntyped total-weight answer: {type(typed).__name__} "
              f"estimate={typed.estimate:.6g}")
        assert typed.estimate > 0
    cluster.close()
    print("\ngateway stopped; session remains usable after serving")


if __name__ == "__main__":
    main()
