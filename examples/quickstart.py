#!/usr/bin/env python
"""Quickstart: the unified ``Tracker`` session API over both problem domains.

This example walks through the two problem families of the paper on small
synthetic workloads, entirely through the ``repro.api`` facade:

1. *Distributed matrix tracking* — 20 sites each observe rows of a low-rank
   matrix; the coordinator continuously maintains a small approximation ``B``
   with ``|‖Ax‖² − ‖Bx‖²| ≤ ε‖A‖²_F`` while exchanging far fewer messages
   than shipping every row.
2. *Distributed weighted heavy hitters* — 20 sites observe a skewed weighted
   item stream; the coordinator reports every φ-heavy element.
3. *Checkpoint/resume* — a session saved mid-stream and restored continues
   bit-identically to one that never stopped.
4. *Sharded execution* — the same session hash-partitioned over several
   independent coordinator groups (``repro.ShardedTracker``); queries merge
   per-shard state into one answer with a summed error bound, and
   ``Answer.to_json()`` serialises it for serving-style consumers.

Protocols are resolved by registry spec name (``repro.create``/
``Tracker.create``); queries are typed objects answered with frozen
``Answer`` dataclasses carrying the estimate, the paper's error bound, and a
message/items snapshot.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

import repro
from repro.api import Covariance, HeavyHitters, Norms, TotalWeight
from repro.data import ZipfianStreamGenerator, make_pamap_like
from repro.streaming import WeightedItemBatch


def matrix_tracking_demo() -> None:
    """Track a low-rank matrix distributed over 20 sites."""
    print("=" * 72)
    print("Distributed matrix tracking (specs matrix/P2 vs matrix/P3)")
    print("=" * 72)

    num_sites = 20
    epsilon = 0.1
    dataset = make_pamap_like(num_rows=10_000)
    print(f"dataset: {dataset.name}  ({dataset.num_rows} rows x {dataset.dimension} cols)")

    trackers = {
        "matrix/P2": repro.Tracker.create(
            "matrix/P2", num_sites=num_sites, dimension=dataset.dimension,
            epsilon=epsilon),
        "matrix/P3": repro.Tracker.create(
            "matrix/P3", num_sites=num_sites, dimension=dataset.dimension,
            epsilon=epsilon, sample_size=600, seed=0),
    }

    exact_covariance = dataset.rows.T @ dataset.rows
    frobenius = float((dataset.rows ** 2).sum())
    for spec, tracker in trackers.items():
        # Rows arrive round-robin at the sites, as if 20 servers each logged
        # a share of the observations (the engine slices the block zero-copy).
        tracker.run(dataset.rows)
        answer = tracker.query(Covariance())
        err = (np.linalg.norm(exact_covariance - answer.matrix, ord=2)
               / frobenius)
        savings = dataset.num_rows / max(1, answer.total_messages)
        print(f"  {spec:10s} err = {err:.4f}   "
              f"messages = {answer.total_messages:6d}   "
              f"({savings:4.1f}x less than sending every row)")

    # The sketch supports the downstream query the paper motivates: norms
    # along arbitrary directions (e.g. principal components).
    tracker = trackers["matrix/P2"]
    direction = np.linalg.svd(dataset.rows, full_matrices=False)[2][0]
    true_norm = float(np.linalg.norm(dataset.rows @ direction) ** 2)
    answer = tracker.query(Norms(direction))
    print(f"  top-PC energy: true = {true_norm:.1f}, from sketch = "
          f"{answer.estimate:.1f} (additive bound {answer.error_bound:.1f})")
    print()


def heavy_hitters_demo() -> None:
    """Track weighted heavy hitters over a skewed distributed stream."""
    print("=" * 72)
    print("Distributed weighted heavy hitters (spec hh/P2)")
    print("=" * 72)

    phi = 0.05
    generator = ZipfianStreamGenerator(universe_size=5_000, skew=2.0, beta=1_000.0,
                                       seed=1)
    sample = generator.generate(50_000)

    tracker = repro.Tracker.create("hh/P2", num_sites=20, epsilon=0.02)
    tracker.run(WeightedItemBatch.from_pairs(sample.items))

    answer = tracker.query(HeavyHitters(phi=phi))
    total = tracker.query(TotalWeight())
    print(f"  stream: {len(sample)} items, total weight {sample.total_weight:.0f} "
          f"(estimated {total.estimate:.0f} +- {total.error_bound:.0f})")
    print(f"  messages = {answer.total_messages} "
          f"(vs {len(sample)} for forwarding everything)")
    print("  reported heavy hitters (element: estimated share):")
    for hitter in answer.hitters:
        print(f"    {int(hitter.element):6d}: {hitter.relative_weight:.3f}")
    print(f"  session: {tracker!r}")
    # Answers serialise to plain JSON for serving-style consumers.
    payload = answer.to_dict()
    print(f"  answer.to_dict(): {len(payload['estimate'])} hitters, "
          f"bound {payload['error_bound']:.1f}, "
          f"{payload['total_messages']} messages")
    print()


def checkpoint_demo() -> None:
    """Save a session mid-stream; the restored session continues identically."""
    print("=" * 72)
    print("Checkpoint/resume (spec hh/P3, randomized)")
    print("=" * 72)

    generator = ZipfianStreamGenerator(universe_size=2_000, skew=2.0, beta=100.0,
                                       seed=5)
    batch = WeightedItemBatch.from_pairs(generator.generate(20_000).items)
    half = len(batch) // 2

    def fresh() -> repro.Tracker:
        return repro.Tracker.create("hh/P3", num_sites=10, epsilon=0.05,
                                    sample_size=300, seed=7, chunk_size=1000)

    uninterrupted = fresh()
    uninterrupted.run(batch[:half])
    uninterrupted.run(batch[half:])

    interrupted = fresh()
    interrupted.run(batch[:half])
    path = os.path.join(tempfile.mkdtemp(), "session.ckpt")
    interrupted.save(path)
    resumed = repro.Tracker.load(path)       # e.g. after a process restart
    resumed.run(batch[half:])

    a = uninterrupted.query(HeavyHitters(phi=0.05))
    b = resumed.query(HeavyHitters(phi=0.05))
    print(f"  checkpoint: {path}")
    print(f"  uninterrupted: messages = {a.total_messages}, "
          f"hitters = {[int(h.element) for h in a.hitters]}")
    print(f"  resumed:       messages = {b.total_messages}, "
          f"hitters = {[int(h.element) for h in b.hitters]}")
    print(f"  bit-identical resume: {a == b}")
    os.remove(path)
    print()


def sharded_demo() -> None:
    """Shard one logical session over independent coordinator groups."""
    print("=" * 72)
    print("Sharded execution (repro.ShardedTracker, spec hh/P2)")
    print("=" * 72)

    generator = ZipfianStreamGenerator(universe_size=5_000, skew=2.0,
                                       beta=1_000.0, seed=1)
    batch = WeightedItemBatch.from_pairs(generator.generate(50_000).items)

    # Elements are hash-partitioned across 4 shards, each a full
    # coordinator group; 'serial' keeps everything in-process (swap in
    # backend="process" for persistent multi-core workers).
    with repro.ShardedTracker.create("hh/P2", shards=4, backend="serial",
                                     num_sites=20, epsilon=0.02) as cluster:
        cluster.run(batch)
        answer = cluster.query(HeavyHitters(phi=0.05))
        stats = cluster.stats()
        print(f"  cluster: {cluster!r}")
        print(f"  per-shard (items, messages): {list(stats.per_shard)}")
        print(f"  merged answer: {len(answer.hitters)} hitters, summed bound "
              f"{answer.error_bound:.0f}, {answer.total_messages} messages")
        print(f"  answer.to_json(): {answer.to_json()[:120]}...")
    print()


def main() -> None:
    matrix_tracking_demo()
    heavy_hitters_demo()
    checkpoint_demo()
    sharded_demo()


if __name__ == "__main__":
    main()
