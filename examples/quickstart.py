#!/usr/bin/env python
"""Quickstart: track a distributed matrix and distributed weighted heavy hitters.

This example walks through the two problem families of the paper on small
synthetic workloads:

1. *Distributed matrix tracking* — 20 sites each observe rows of a low-rank
   matrix; the coordinator continuously maintains a small approximation ``B``
   with ``|‖Ax‖² − ‖Bx‖²| ≤ ε‖A‖²_F`` while exchanging far fewer messages
   than shipping every row.
2. *Distributed weighted heavy hitters* — 20 sites observe a skewed weighted
   item stream; the coordinator reports every φ-heavy element.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DeterministicDirectionProtocol,
    MatrixPrioritySamplingProtocol,
    ThresholdedUpdatesProtocol,
)
from repro.data import ZipfianStreamGenerator, make_pamap_like
from repro.evaluation import evaluate_heavy_hitter_protocol, evaluate_matrix_protocol


def matrix_tracking_demo() -> None:
    """Track a low-rank matrix distributed over 20 sites."""
    print("=" * 72)
    print("Distributed matrix tracking (protocol P2 vs P3)")
    print("=" * 72)

    num_sites = 20
    epsilon = 0.1
    dataset = make_pamap_like(num_rows=10_000)
    print(f"dataset: {dataset.name}  ({dataset.num_rows} rows x {dataset.dimension} cols)")

    protocols = {
        "P2 (deterministic)": DeterministicDirectionProtocol(
            num_sites=num_sites, dimension=dataset.dimension, epsilon=epsilon),
        "P3 (sampling)": MatrixPrioritySamplingProtocol(
            num_sites=num_sites, dimension=dataset.dimension, epsilon=epsilon,
            sample_size=600, seed=0),
    }

    for name, protocol in protocols.items():
        # Rows arrive round-robin at the sites, as if 20 servers each logged a
        # share of the observations.
        for index, row in enumerate(dataset.rows):
            protocol.process(index % num_sites, row)
        evaluation = evaluate_matrix_protocol(protocol, name=name)
        savings = dataset.num_rows / max(1, evaluation.messages)
        print(f"  {name:22s} err = {evaluation.error:.4f}   "
              f"messages = {evaluation.messages:6d}   "
              f"({savings:4.1f}x less than sending every row)")

    # The sketch supports the downstream query the paper motivates: norms along
    # arbitrary directions (e.g. principal components).
    protocol = protocols["P2 (deterministic)"]
    direction = np.linalg.svd(dataset.rows, full_matrices=False)[2][0]
    true_norm = float(np.linalg.norm(dataset.rows @ direction) ** 2)
    approx_norm = protocol.squared_norm_along(direction)
    print(f"  top-PC energy: true = {true_norm:.1f}, from sketch = {approx_norm:.1f}")
    print()


def heavy_hitters_demo() -> None:
    """Track weighted heavy hitters over a skewed distributed stream."""
    print("=" * 72)
    print("Distributed weighted heavy hitters (protocol P2)")
    print("=" * 72)

    num_sites = 20
    epsilon = 0.02
    phi = 0.05
    generator = ZipfianStreamGenerator(universe_size=5_000, skew=2.0, beta=1_000.0,
                                       seed=1)
    sample = generator.generate(50_000)

    protocol = ThresholdedUpdatesProtocol(num_sites=num_sites, epsilon=epsilon)
    for index, (element, weight) in enumerate(sample.items):
        protocol.process(index % num_sites, element, weight)

    evaluation = evaluate_heavy_hitter_protocol(
        protocol, sample.element_weights, phi, total_weight=sample.total_weight)
    print(f"  stream: {len(sample)} items, total weight {sample.total_weight:.0f}")
    print(f"  recall = {evaluation.recall:.2f}, precision = {evaluation.precision:.2f}, "
          f"avg relative error = {evaluation.average_error:.2e}")
    print(f"  messages = {evaluation.messages} "
          f"(vs {len(sample)} for forwarding everything)")
    print("  reported heavy hitters (element: estimated share):")
    for hitter in protocol.heavy_hitters(phi):
        print(f"    {hitter.element:6d}: {hitter.relative_weight:.3f}")
    print()


def main() -> None:
    matrix_tracking_demo()
    heavy_hitters_demo()


if __name__ == "__main__":
    main()
