#!/usr/bin/env python
"""A polling metrics dashboard over the gateway's ``/v1/metrics`` route.

The observability story end to end: a :class:`repro.Gateway` serves one
sharded ``hh/P3`` session with ``open_metrics=True`` (the Prometheus route
stays anonymous even though every other route needs the bearer token —
exactly how a scraper sidecar would be wired).  An ingest thread pushes
skewed traffic through ``/v1/push`` while the foreground loop polls
``GatewayClient.metrics()``, parses the text exposition with ~20 lines of
stdlib string handling, and renders successive dashboard frames: request
counts by route, items ingested cluster-wide, p-ish latency from the
histogram buckets, and the in-flight gauge.

Every request in this script carries one fixed ``X-Trace-Id`` so the whole
demo correlates to a single trace in ``--log-json`` output.

Run with:  python examples/metrics_dashboard.py
"""

from __future__ import annotations

import threading
import time

import numpy as np

import repro
from repro.gateway import GatewayClient

AUTH_TOKEN = "scrape-demo-secret"
TRACE_ID = "metrics-dashboard-demo"
ROUNDS = 4
BATCHES_PER_ROUND = 6
ITEMS_PER_BATCH = 500


# ------------------------------------------------- tiny Prometheus parser
def parse_exposition(text: str):
    """Parse Prometheus text into {name: {frozenset(labels): value}}."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        body, value = line.rsplit(" ", 1)
        if "{" in body:
            name, raw = body[:-1].split("{", 1)
            labels = frozenset(pair.split("=", 1)[0] + "=" +
                               pair.split("=", 1)[1].strip('"')
                               for pair in raw.split(","))
        else:
            name, labels = body, frozenset()
        samples.setdefault(name, {})[labels] = float(value)
    return samples


def total(samples, name: str, **match: str) -> float:
    """Sum a family's samples whose labels include every ``match`` pair."""
    wanted = {f"{key}={value}" for key, value in match.items()}
    return sum(value for labels, value in samples.get(name, {}).items()
               if wanted <= set(labels))


def latency_quantile(samples, name: str, q: float) -> float:
    """Approximate a latency quantile from cumulative histogram buckets."""
    buckets = []
    for labels, value in samples.get(f"{name}_bucket", {}).items():
        bound = next(pair.split("=", 1)[1] for pair in labels
                     if pair.startswith("le="))
        buckets.append((float("inf") if bound == "+Inf" else float(bound),
                        value))
    buckets.sort()
    if not buckets or buckets[-1][1] == 0:
        return 0.0
    rank = q * buckets[-1][1]
    return next(bound for bound, count in buckets if count >= rank)


# ----------------------------------------------------------- the demo
def ingest(base_url: str, stop: threading.Event) -> None:
    rng = np.random.default_rng(2014)
    client = GatewayClient(base_url, auth_token=AUTH_TOKEN,
                           trace_id=TRACE_ID)
    elements = np.array([f"flow-{index}" for index in range(400)])
    try:
        while not stop.is_set():
            for _ in range(BATCHES_PER_ROUND):
                draws = rng.zipf(1.4, size=ITEMS_PER_BATCH) % len(elements)
                client.push(list(zip(elements[draws].tolist(),
                                     (1.0 + draws % 3).tolist())))
            # Mix in reads so the query route shows up on the dashboard.
            client.query("heavy_hitters", {"phi": 0.05})
            stop.wait(0.05)
    finally:
        client.close()


def main() -> None:
    cluster = repro.ShardedTracker.create("hh/P3", shards=2,
                                          backend="thread", num_sites=8,
                                          epsilon=0.02)
    with repro.Gateway(cluster, auth_token=AUTH_TOKEN,
                       open_metrics=True) as gateway:
        print(f"gateway serving hh/P3 at {gateway.url} "
              "(metrics route open, everything else tokened)")

        # The scraper needs no credentials — open_metrics=True.
        scraper = GatewayClient(gateway.url, trace_id=TRACE_ID)
        stop = threading.Event()
        worker = threading.Thread(target=ingest,
                                  args=(gateway.url, stop),
                                  name="ingest-agent")
        worker.start()
        try:
            last_items = 0.0
            for frame in range(1, ROUNDS + 1):
                time.sleep(0.4)
                samples = parse_exposition(scraper.metrics())
                items = total(samples, "repro_cluster_items_total")
                pushes = total(samples, "repro_gateway_requests_total",
                               route="/v1/push", status="200")
                queries = total(samples, "repro_gateway_requests_total",
                                route="/v1/query/heavy_hitters")
                p90 = latency_quantile(samples,
                                       "repro_gateway_request_seconds", 0.9)
                inflight = total(samples, "repro_gateway_inflight_requests")
                print(f"frame {frame}: items={items:>8.0f} "
                      f"(+{items - last_items:.0f})  pushes={pushes:.0f}  "
                      f"hh-queries={queries:.0f}  p90<= {p90 * 1e3:.1f}ms  "
                      f"inflight={inflight:.0f}")
                last_items = items
        finally:
            stop.set()
            worker.join()

        # Final frame: the cluster-merged document also carries worker-side
        # tracker series — same process here (thread backend), but the same
        # names arrive over the wire from socket/process shards.
        samples = parse_exposition(scraper.metrics())
        tracker_items = total(samples, "repro_tracker_items_total")
        cluster_items = total(samples, "repro_cluster_items_total")
        print(f"\nmerged view: repro_tracker_items_total={tracker_items:.0f} "
              f"repro_cluster_items_total={cluster_items:.0f} across "
              f"{len(samples)} metric families")
        assert cluster_items > 0 and tracker_items > 0
        assert total(samples, "repro_gateway_requests_total") > 0

        health = scraper.request("GET", "/v1/healthz")
        print(f"healthz: status={health['status']} "
              f"shards={health['shards']}")
        scraper.close()
    cluster.close()
    print("dashboard demo complete")


if __name__ == "__main__":
    main()
