#!/usr/bin/env python
"""Latent semantic indexing over logs collected at multiple data centers.

The paper's second motivating application: documents (or log records) in the
bag-of-words model arrive continuously at distributed nodes, forming a
document × term matrix.  Latent semantic indexing (LSI) needs the top
singular directions of that matrix; the covariance guarantee
``‖AᵀA − BᵀB‖₂ ≤ ε‖A‖²_F`` means the coordinator's sketch supports LSI
directly without collecting the documents.

This example simulates three topic clusters of log messages spread over
``m`` collection nodes, tracks the term-covariance with a
``repro.Tracker`` session over spec ``matrix/P3`` (priority sampling of
rows), and then uses the sketch — obtained through the typed
``SketchMatrix`` query — to (a) recover the topic subspace and (b) answer
similarity queries between unseen documents, comparing both against the
exact answers.

Run with:  python examples/distributed_lsi_logs.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.api import ApproximationError, SketchMatrix
from repro.utils.linalg import thin_svd

NUM_NODES = 15
VOCABULARY = 300
NUM_TOPICS = 3
DOCS_PER_TOPIC = 4_000
EPSILON = 0.1
LSI_RANK = 5


def topic_model(rng: np.random.Generator) -> np.ndarray:
    """Random sparse topic/term distributions."""
    topics = rng.gamma(0.3, 1.0, size=(NUM_TOPICS, VOCABULARY))
    return topics / topics.sum(axis=1, keepdims=True)


def sample_documents(rng: np.random.Generator, topics: np.ndarray,
                     count: int) -> np.ndarray:
    """Draw bag-of-words rows: each document mixes one dominant topic plus noise."""
    documents = np.zeros((count, VOCABULARY))
    for index in range(count):
        topic = int(rng.integers(0, NUM_TOPICS))
        length = int(rng.integers(30, 120))
        counts = rng.multinomial(length, topics[topic])
        documents[index] = counts
    # TF-IDF style damping keeps row norms comparable (the paper's beta bound).
    return np.sqrt(documents)


def main() -> None:
    rng = np.random.default_rng(31)
    topics = topic_model(rng)
    documents = sample_documents(rng, topics, NUM_TOPICS * DOCS_PER_TOPIC)
    rng.shuffle(documents)

    tracker = repro.Tracker.create(
        "matrix/P3", num_sites=NUM_NODES, dimension=VOCABULARY,
        epsilon=EPSILON, sample_size=800, seed=0)
    tracker.run(documents)

    error = tracker.query(ApproximationError())
    print(f"{documents.shape[0]} log documents, vocabulary {VOCABULARY}, "
          f"{NUM_NODES} collection nodes")
    print(f"covariance error      : {error.estimate:.4f} "
          f"(guarantee {EPSILON})")
    print(f"messages              : {error.total_messages} "
          f"(vs {documents.shape[0]} to centralise everything)")

    # LSI subspace from the sketch vs from the exact matrix.
    sketch = tracker.query(SketchMatrix()).estimate
    _, _, exact_vt = thin_svd(documents)
    _, _, sketch_vt = thin_svd(sketch)
    exact_basis = exact_vt[:LSI_RANK]
    sketch_basis = sketch_vt[:LSI_RANK]
    overlap = np.sum((exact_basis @ sketch_basis.T) ** 2) / LSI_RANK
    print(f"topic-subspace overlap: {overlap:.3f} (1.0 = identical)")

    # Similarity queries: embed two fresh documents with both bases.
    fresh = sample_documents(rng, topics, 2)
    exact_embedding = fresh @ exact_basis.T
    sketch_embedding = fresh @ sketch_basis.T

    def cosine(u: np.ndarray, v: np.ndarray) -> float:
        return float(u @ v / (np.linalg.norm(u) * np.linalg.norm(v)))

    print("similarity of two fresh documents:")
    print(f"  exact LSI embedding : {cosine(exact_embedding[0], exact_embedding[1]):.3f}")
    print(f"  sketch LSI embedding: {cosine(sketch_embedding[0], sketch_embedding[1]):.3f}")


if __name__ == "__main__":
    main()
