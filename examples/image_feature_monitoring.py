#!/usr/bin/env python
"""Distributed image-feature monitoring (the paper's image-analysis motivation).

A search-engine company receives images at many data centers.  Each image is
represented by a 128-dimensional SIFT-like descriptor; the company wants an
always-fresh principal-component model of the global descriptor matrix (for
near-duplicate detection, visual clustering, index maintenance, …) without
shipping every descriptor to a central cluster.

This example simulates ``m`` data centers receiving descriptor streams whose
latent structure drifts over time (a new "visual theme" appears midway).  A
``repro.Tracker`` session over spec ``matrix/P2`` maintains the
approximation at the coordinator; the stream arrives in instalments
(repeated ``tracker.run`` calls continue the site assignment exactly), and
after every instalment the typed ``ApproximationError``/``SketchMatrix``
queries report the sketch quality — demonstrating the continuous-tracking
property: the approximation is valid at *every* time instant, not just at
the end.  Midway through, the session is checkpointed to disk and resumed,
exactly as a long-running monitor surviving a process restart would.

Run with:  python examples/image_feature_monitoring.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

import repro
from repro.api import ApproximationError, FrobeniusSquared, SketchMatrix
from repro.utils.linalg import thin_svd

NUM_SITES = 25
DIMENSION = 128
EPSILON = 0.1
ROWS_PER_PHASE = 6_000
CHECKPOINT_EVERY = 2_000


def descriptor_batch(rng: np.random.Generator, basis: np.ndarray,
                     count: int) -> np.ndarray:
    """Sample SIFT-like descriptors concentrated on a low-dimensional basis."""
    rank = basis.shape[0]
    spectrum = np.exp(-np.arange(rank) / 3.0)
    coefficients = rng.standard_normal((count, rank)) * spectrum
    noise = 0.02 * rng.standard_normal((count, DIMENSION))
    descriptors = coefficients @ basis + noise
    # SIFT descriptors are non-negative and normalised; mimic that roughly.
    return np.abs(descriptors)


def subspace_alignment(exact_rows: np.ndarray, sketch_rows: np.ndarray,
                       k: int = 10) -> float:
    """Fraction of the exact top-k energy captured by the sketch's top-k subspace."""
    _, _, exact_vt = thin_svd(exact_rows)
    _, _, sketch_vt = thin_svd(sketch_rows)
    exact_top = exact_vt[:k]
    sketch_top = sketch_vt[:min(k, sketch_vt.shape[0])]
    projected = exact_top @ sketch_top.T
    return float(np.sum(projected ** 2)) / k


def main() -> None:
    rng = np.random.default_rng(2014)
    # Two visual "themes": the second appears halfway through the stream.
    theme_a = np.linalg.qr(rng.standard_normal((DIMENSION, 12)))[0].T
    theme_b = np.linalg.qr(rng.standard_normal((DIMENSION, 12)))[0].T

    tracker = repro.Tracker.create("matrix/P2", num_sites=NUM_SITES,
                                   dimension=DIMENSION, epsilon=EPSILON)
    checkpoint = os.path.join(tempfile.mkdtemp(), "monitor.ckpt")

    print(f"Simulating {NUM_SITES} data centers, d = {DIMENSION}, epsilon = {EPSILON}")
    print(f"{'images':>8s} {'err':>10s} {'PC align':>10s} {'messages':>10s} "
          f"{'naive msgs':>11s}")

    history = []
    for phase, basis in enumerate((theme_a, theme_b)):
        descriptors = descriptor_batch(rng, basis, ROWS_PER_PHASE)
        history.append(descriptors)
        # The phase arrives in instalments; each tracker.run continues the
        # round-robin site assignment where the previous one stopped.
        for start in range(0, ROWS_PER_PHASE, CHECKPOINT_EVERY):
            tracker.run(descriptors[start:start + CHECKPOINT_EVERY])
            exact = np.vstack(history)[: tracker.items_processed]
            error = tracker.query(ApproximationError())
            sketch = tracker.query(SketchMatrix()).estimate
            alignment = subspace_alignment(exact, sketch)
            print(f"{tracker.items_processed:8d} {error.estimate:10.4f} "
                  f"{alignment:10.3f} {error.total_messages:10d} "
                  f"{tracker.items_processed:11d}")
        if phase == 0:
            # Survive a "process restart" between the two phases: persist the
            # session and resume it — the restored tracker continues
            # bit-identically (same thresholds, same message accounting).
            tracker.save(checkpoint)
            tracker = repro.Tracker.load(checkpoint)
            print(f"  -- session checkpointed to {checkpoint} and resumed --")

    exact = np.vstack(history)
    frobenius = tracker.query(FrobeniusSquared())
    sketch = tracker.query(SketchMatrix()).estimate
    print("\nFinal state:")
    print(f"  {tracker!r}")
    print(f"  approximation error        : "
          f"{tracker.query(ApproximationError()).estimate:.4f} "
          f"(guarantee: {EPSILON})")
    print(f"  coordinator sketch rows    : {sketch.shape[0]}")
    print(f"  total messages             : {tracker.total_messages} "
          f"(naive streaming would use {exact.shape[0]})")
    print(f"  estimated ||A||_F^2        : {frobenius.estimate:.1f} "
          f"(exact {float(np.sum(exact ** 2)):.1f})")
    os.remove(checkpoint)


if __name__ == "__main__":
    main()
