#!/usr/bin/env python
"""Distributed image-feature monitoring (the paper's image-analysis motivation).

A search-engine company receives images at many data centers.  Each image is
represented by a 128-dimensional SIFT-like descriptor; the company wants an
always-fresh principal-component model of the global descriptor matrix (for
near-duplicate detection, visual clustering, index maintenance, …) without
shipping every descriptor to a central cluster.

This example simulates ``m`` data centers receiving descriptor streams whose
latent structure drifts over time (a new "visual theme" appears midway).  A
:class:`DeterministicDirectionProtocol` (matrix protocol P2) maintains the
approximation at the coordinator.  We periodically compare the top principal
subspace of the sketch against the exact one and report the communication
spent — demonstrating the continuous-tracking property: the approximation is
valid at *every* time instant, not just at the end.

Run with:  python examples/image_feature_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import DeterministicDirectionProtocol
from repro.utils.linalg import thin_svd

NUM_SITES = 25
DIMENSION = 128
EPSILON = 0.1
ROWS_PER_PHASE = 6_000
CHECKPOINT_EVERY = 2_000


def descriptor_batch(rng: np.random.Generator, basis: np.ndarray,
                     count: int) -> np.ndarray:
    """Sample SIFT-like descriptors concentrated on a low-dimensional basis."""
    rank = basis.shape[0]
    spectrum = np.exp(-np.arange(rank) / 3.0)
    coefficients = rng.standard_normal((count, rank)) * spectrum
    noise = 0.02 * rng.standard_normal((count, DIMENSION))
    descriptors = coefficients @ basis + noise
    # SIFT descriptors are non-negative and normalised; mimic that roughly.
    return np.abs(descriptors)


def subspace_alignment(exact_rows: np.ndarray, sketch_rows: np.ndarray,
                       k: int = 10) -> float:
    """Fraction of the exact top-k energy captured by the sketch's top-k subspace."""
    _, _, exact_vt = thin_svd(exact_rows)
    _, _, sketch_vt = thin_svd(sketch_rows)
    exact_top = exact_vt[:k]
    sketch_top = sketch_vt[:min(k, sketch_vt.shape[0])]
    projected = exact_top @ sketch_top.T
    return float(np.sum(projected ** 2)) / k


def main() -> None:
    rng = np.random.default_rng(2014)
    # Two visual "themes": the second appears halfway through the stream.
    theme_a = np.linalg.qr(rng.standard_normal((DIMENSION, 12)))[0].T
    theme_b = np.linalg.qr(rng.standard_normal((DIMENSION, 12)))[0].T

    protocol = DeterministicDirectionProtocol(
        num_sites=NUM_SITES, dimension=DIMENSION, epsilon=EPSILON)

    print(f"Simulating {NUM_SITES} data centers, d = {DIMENSION}, epsilon = {EPSILON}")
    print(f"{'images':>8s} {'err':>10s} {'PC align':>10s} {'messages':>10s} "
          f"{'naive msgs':>11s}")

    history = []
    observed = 0
    for phase, basis in enumerate((theme_a, theme_b)):
        descriptors = descriptor_batch(rng, basis, ROWS_PER_PHASE)
        for row in descriptors:
            protocol.process(observed % NUM_SITES, row)
            history.append(row)
            observed += 1
            if observed % CHECKPOINT_EVERY == 0:
                exact = np.vstack(history)
                error = protocol.approximation_error()
                alignment = subspace_alignment(exact, protocol.sketch_matrix())
                print(f"{observed:8d} {error:10.4f} {alignment:10.3f} "
                      f"{protocol.total_messages:10d} {observed:11d}")

    exact = np.vstack(history)
    print("\nFinal state:")
    print(f"  approximation error        : {protocol.approximation_error():.4f} "
          f"(guarantee: {EPSILON})")
    print(f"  coordinator sketch rows    : {protocol.sketch_matrix().shape[0]}")
    print(f"  total messages             : {protocol.total_messages} "
          f"(naive streaming would use {exact.shape[0]})")
    print(f"  estimated ||A||_F^2        : {protocol.estimated_squared_frobenius():.1f} "
          f"(exact {float(np.sum(exact ** 2)):.1f})")


if __name__ == "__main__":
    main()
