"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The workload
sizes here are scaled down from the paper's (10^7 stream items, 629k/300k-row
matrices) so the whole harness completes in a few minutes; the *shape* of each
result — which protocol wins, by roughly what factor, how curves move with
ε / m / β — is what EXPERIMENTS.md records and what the assertions check.

Set the environment variable ``REPRO_BENCH_SCALE`` to a float (e.g. ``10``)
to multiply the stream/matrix sizes for a closer-to-paper run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import HeavyHitterConfig, MatrixConfig


def _scale() -> float:
    try:
        return max(0.1, float(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1.0


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """The global size multiplier applied to benchmark workloads."""
    return _scale()


@pytest.fixture(scope="session")
def hh_config(bench_scale) -> HeavyHitterConfig:
    """Heavy-hitter benchmark configuration (Figure 1)."""
    return HeavyHitterConfig(
        num_items=int(30_000 * bench_scale),
        universe_size=10_000,
        num_sites=50,
        seed=2014,
        epsilon_grid=[1e-3, 5e-3, 1e-2, 5e-2],
        beta_grid=[1.0, 10.0, 100.0, 1_000.0, 10_000.0],
    )


@pytest.fixture(scope="session")
def matrix_config(bench_scale) -> MatrixConfig:
    """Matrix-tracking benchmark configuration (Table 1, Figures 2-4, 6-7)."""
    return MatrixConfig(
        num_rows=int(6_000 * bench_scale),
        num_sites=50,
        seed=2014,
        epsilon_grid=[5e-3, 1e-2, 5e-2, 1e-1, 5e-1],
        site_grid=[10, 25, 50, 100],
    )


@pytest.fixture(scope="session")
def run_once():
    """Helper fixture: run a function exactly once under pytest-benchmark timing.

    Every experiment driver is deterministic and expensive relative to timer
    resolution, so a single round is both sufficient and necessary to keep the
    harness fast.
    """

    def _run(benchmark, function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
