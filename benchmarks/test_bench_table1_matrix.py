"""Table 1: error and message counts on the PAMAP-like and MSD-like datasets.

Regenerates the six methods of the paper's Table 1 (P1, P2, P3wor, P3wr and
the send-everything FD / SVD baselines) on both dataset surrogates, prints the
table, and asserts the qualitative findings the paper draws from it.
"""

from __future__ import annotations

from repro.evaluation.tables import format_table
from repro.experiments.matrix_experiments import table1_rows


class TestTable1:
    def test_table1(self, benchmark, matrix_config, run_once):
        rows = run_once(benchmark, table1_rows, matrix_config)
        print()
        print(format_table(
            rows,
            columns=["dataset", "method", "err", "msg", "sketch_rows", "rank"],
            title="Table 1: matrix tracking on PAMAP-like (k=30) and MSD-like (k=50)",
        ))
        cells = {(row["dataset"], row["method"]): row for row in rows}

        for dataset in ("pamap", "msd"):
            naive_messages = cells[(dataset, "SVD")]["msg"]
            # P2 and both P3 variants use far fewer messages than sending
            # every row to the coordinator.
            assert cells[(dataset, "P2")]["msg"] < 0.8 * naive_messages
            assert cells[(dataset, "P3wor")]["msg"] < 0.8 * naive_messages
            # P1 is the most accurate distributed protocol but also the most
            # communication hungry (comparable to, or above, the naive count).
            protocol_errors = {name: cells[(dataset, name)]["err"]
                               for name in ("P1", "P2", "P3wor", "P3wr")}
            assert min(protocol_errors, key=protocol_errors.get) == "P1"
            assert cells[(dataset, "P1")]["msg"] >= 0.8 * naive_messages
            # Without-replacement sampling dominates with-replacement sampling
            # (fewer messages and at least comparable error), as in the paper.
            assert (cells[(dataset, "P3wor")]["msg"]
                    < cells[(dataset, "P3wr")]["msg"])
            assert (cells[(dataset, "P3wor")]["err"]
                    <= cells[(dataset, "P3wr")]["err"] + 0.02)

        # Dataset character: the low-rank surrogate is recovered almost
        # exactly by the offline baselines, the high-rank one is not.
        assert cells[("pamap", "SVD")]["err"] < 1e-5
        assert cells[("pamap", "FD")]["err"] < 1e-4
        assert cells[("msd", "SVD")]["err"] > 1e-4
        assert cells[("msd", "FD")]["err"] > cells[("msd", "SVD")]["err"] - 1e-9
