"""Figures 6 and 7: the appendix-C protocol P4 versus P1-P3.

The paper includes these figures to demonstrate *why* the natural matrix
analogue of the randomized heavy-hitters protocol does not work: its error is
not controlled by ε and can be catastrophic on correlated (low-rank) data.
"""

from __future__ import annotations

from repro.evaluation.tables import render_figure
from repro.experiments.matrix_experiments import figure67_p4_comparison


def _comparison(dataset, config):
    return figure67_p4_comparison(
        dataset, config,
        epsilons=config.epsilon_grid[:3],
        site_counts=config.site_grid[:3],
    )


class TestFigure6PAMAP:
    def test_fig6_p4_on_pamap(self, benchmark, matrix_config, run_once):
        results = run_once(benchmark, _comparison, "pamap", matrix_config)
        eps_sweep = results["err_vs_epsilon"]
        site_sweep = results["err_vs_sites"]
        print()
        print(render_figure(eps_sweep, "err",
                            "Figure 6(a): error vs epsilon with P4 (PAMAP-like)"))
        print()
        print(render_figure(site_sweep, "err",
                            "Figure 6(b): error vs sites with P4 (PAMAP-like)"))
        errors = eps_sweep.series("err")
        # P4's error is far worse than every sound protocol at small epsilon
        # on the low-rank (highly correlated) dataset ...
        assert errors["P4"][0] > 5 * errors["P2"][0]
        assert errors["P4"][0] > 5 * errors["P1"][0]
        # ... and it violates the epsilon guarantee the others satisfy.
        assert errors["P4"][0] > eps_sweep.values()[0]
        # The failure persists at every site count.
        for value in site_sweep.series("err")["P4"]:
            assert value > matrix_config.epsilon


class TestFigure7MSD:
    def test_fig7_p4_on_msd(self, benchmark, matrix_config, run_once):
        results = run_once(benchmark, _comparison, "msd", matrix_config)
        eps_sweep = results["err_vs_epsilon"]
        site_sweep = results["err_vs_sites"]
        print()
        print(render_figure(eps_sweep, "err",
                            "Figure 7(a): error vs epsilon with P4 (MSD-like)"))
        print()
        print(render_figure(site_sweep, "err",
                            "Figure 7(b): error vs sites with P4 (MSD-like)"))
        errors = eps_sweep.series("err")
        # On the high-rank dataset the effect is milder (as in the paper) but
        # P4 still trails the sound protocols at small epsilon.
        assert errors["P4"][0] > errors["P1"][0]
        assert errors["P4"][0] > errors["P2"][0]
        for value in site_sweep.series("err")["P4"]:
            assert value > 0.0
