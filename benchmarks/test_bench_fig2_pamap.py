"""Figures 2(a)-(d): matrix tracking protocols P1-P3 on the PAMAP-like dataset.

Panels (a)/(b) sweep the error parameter ε, panels (c)/(d) sweep the number of
sites m.  Each benchmark prints the regenerated series and asserts the shape
reported in the paper.
"""

from __future__ import annotations

from repro.evaluation.tables import render_figure
from repro.experiments.matrix_experiments import figure_sweep_epsilon, figure_sweep_sites


def _epsilon_sweep(config):
    return figure_sweep_epsilon("pamap", config)


def _site_sweep(config):
    return figure_sweep_sites("pamap", config)


class TestFigure2EpsilonSweep:
    def test_fig2a_err_vs_eps(self, benchmark, matrix_config, run_once):
        result = run_once(benchmark, _epsilon_sweep, matrix_config)
        print()
        print(render_figure(result, "err", "Figure 2(a): error vs epsilon (PAMAP-like)"))
        errors = result.series("err")
        epsilons = result.values()
        for protocol in ("P1", "P2", "P3"):
            series = errors[protocol]
            # Error grows with epsilon (weakly, allowing sampling noise) ...
            assert series[0] <= series[-1] + 1e-6, protocol
            # ... and never exceeds the guarantee.
            for epsilon, value in zip(epsilons, series):
                assert value <= epsilon + 1e-9, (protocol, epsilon, value)
        # P1 vastly outperforms its guarantee (most accurate protocol).
        for index in range(len(epsilons)):
            assert errors["P1"][index] <= errors["P2"][index] + 1e-9

    def test_fig2b_msg_vs_eps(self, benchmark, matrix_config, run_once):
        result = run_once(benchmark, _epsilon_sweep, matrix_config)
        print()
        print(render_figure(result, "msg", "Figure 2(b): messages vs epsilon (PAMAP-like)"))
        messages = result.series("msg")
        for protocol in ("P1", "P2", "P3"):
            # Communication decreases as epsilon grows.
            assert messages[protocol][-1] < messages[protocol][0], protocol
        # P1 sends much more than P2 and P3 at every epsilon.
        for index in range(len(result.values())):
            assert messages["P1"][index] > messages["P2"][index]
            assert messages["P1"][index] > messages["P3"][index]


class TestFigure2SiteSweep:
    def test_fig2c_msg_vs_sites(self, benchmark, matrix_config, run_once):
        result = run_once(benchmark, _site_sweep, matrix_config)
        print()
        print(render_figure(result, "msg", "Figure 2(c): messages vs sites (PAMAP-like)"))
        messages = result.series("msg")
        # P2 and P3 communication grows (roughly linearly) with the number of
        # sites.
        for protocol in ("P2", "P3"):
            assert messages[protocol][-1] > messages[protocol][0], protocol

    def test_fig2d_err_vs_sites(self, benchmark, matrix_config, run_once):
        result = run_once(benchmark, _site_sweep, matrix_config)
        print()
        print(render_figure(result, "err", "Figure 2(d): error vs sites (PAMAP-like)"))
        errors = result.series("err")
        # The number of sites has no significant impact on accuracy: every
        # protocol stays within its epsilon guarantee at every m.
        epsilon = matrix_config.epsilon
        for protocol, series in errors.items():
            for value in series:
                assert value <= epsilon + 1e-9, (protocol, value)
