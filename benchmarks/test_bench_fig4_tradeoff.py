"""Figure 4: the communication / accuracy trade-off frontier on both datasets.

The paper tunes ε per protocol so that all protocols are compared at matched
error (or matched communication); the same frontier is obtained here by
sweeping ε and reading each protocol's (err, msg) pairs.
"""

from __future__ import annotations

from repro.evaluation.tables import format_table
from repro.experiments.matrix_experiments import figure4_tradeoff


def _frontier(dataset, config):
    return figure4_tradeoff(dataset, config)


def _by_protocol(rows):
    grouped = {}
    for row in rows:
        grouped.setdefault(row["protocol"], []).append(row)
    for entries in grouped.values():
        entries.sort(key=lambda entry: entry["msg"])
    return grouped


class TestFigure4:
    def test_fig4a_pamap_tradeoff(self, benchmark, matrix_config, run_once):
        rows = run_once(benchmark, _frontier, "pamap", matrix_config)
        print()
        print(format_table(rows, title="Figure 4(a): messages vs error (PAMAP-like)"))
        grouped = _by_protocol(rows)
        # Within each protocol, more communication means (weakly) less error.
        for protocol, entries in grouped.items():
            assert entries[-1]["err"] <= entries[0]["err"] + 1e-6, protocol
        # P1 achieves the smallest error overall; P2/P3 reach small message
        # counts that P1 never reaches.
        best_error = {name: min(e["err"] for e in entries)
                      for name, entries in grouped.items()}
        fewest_msgs = {name: min(e["msg"] for e in entries)
                       for name, entries in grouped.items()}
        assert best_error["P1"] <= min(best_error.values()) + 1e-9
        assert min(fewest_msgs["P2"], fewest_msgs["P3"]) < fewest_msgs["P1"]

    def test_fig4b_msd_tradeoff(self, benchmark, matrix_config, run_once):
        rows = run_once(benchmark, _frontier, "msd", matrix_config)
        print()
        print(format_table(rows, title="Figure 4(b): messages vs error (MSD-like)"))
        grouped = _by_protocol(rows)
        for protocol, entries in grouped.items():
            assert entries[-1]["err"] <= entries[0]["err"] + 1e-6, protocol
        best_error = {name: min(e["err"] for e in entries)
                      for name, entries in grouped.items()}
        fewest_msgs = {name: min(e["msg"] for e in entries)
                       for name, entries in grouped.items()}
        assert best_error["P1"] <= min(best_error.values()) + 1e-9
        assert min(fewest_msgs["P2"], fewest_msgs["P3"]) < fewest_msgs["P1"]
