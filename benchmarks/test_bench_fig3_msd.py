"""Figures 3(a)-(d): matrix tracking protocols P1-P3 on the MSD-like dataset.

Same sweeps as Figure 2 but on the high-rank dataset surrogate, where even the
offline SVD keeps residual error.
"""

from __future__ import annotations

from repro.evaluation.tables import render_figure
from repro.experiments.matrix_experiments import figure_sweep_epsilon, figure_sweep_sites


def _epsilon_sweep(config):
    return figure_sweep_epsilon("msd", config)


def _site_sweep(config):
    return figure_sweep_sites("msd", config)


class TestFigure3EpsilonSweep:
    def test_fig3a_err_vs_eps(self, benchmark, matrix_config, run_once):
        result = run_once(benchmark, _epsilon_sweep, matrix_config)
        print()
        print(render_figure(result, "err", "Figure 3(a): error vs epsilon (MSD-like)"))
        errors = result.series("err")
        epsilons = result.values()
        for protocol in ("P1", "P2", "P3"):
            series = errors[protocol]
            assert series[0] <= series[-1] + 1e-6, protocol
            for epsilon, value in zip(epsilons, series):
                assert value <= epsilon + 1e-9, (protocol, epsilon, value)

    def test_fig3b_msg_vs_eps(self, benchmark, matrix_config, run_once):
        result = run_once(benchmark, _epsilon_sweep, matrix_config)
        print()
        print(render_figure(result, "msg", "Figure 3(b): messages vs epsilon (MSD-like)"))
        messages = result.series("msg")
        for protocol in ("P1", "P2", "P3"):
            assert messages[protocol][-1] < messages[protocol][0], protocol
        for index in range(len(result.values())):
            assert messages["P1"][index] > messages["P2"][index]


class TestFigure3SiteSweep:
    def test_fig3c_msg_vs_sites(self, benchmark, matrix_config, run_once):
        result = run_once(benchmark, _site_sweep, matrix_config)
        print()
        print(render_figure(result, "msg", "Figure 3(c): messages vs sites (MSD-like)"))
        messages = result.series("msg")
        for protocol in ("P2", "P3"):
            assert messages[protocol][-1] > messages[protocol][0], protocol

    def test_fig3d_err_vs_sites(self, benchmark, matrix_config, run_once):
        result = run_once(benchmark, _site_sweep, matrix_config)
        print()
        print(render_figure(result, "err", "Figure 3(d): error vs sites (MSD-like)"))
        errors = result.series("err")
        epsilon = matrix_config.epsilon
        for protocol, series in errors.items():
            for value in series:
                assert value <= epsilon + 1e-9, (protocol, value)
