"""Figure 1 (a)-(f): distributed weighted heavy hitters on a Zipfian stream.

Each benchmark reruns the corresponding panel of Figure 1 of the paper
(recall / precision / err / msg versus ε, the err-vs-msg trade-off, and msg
versus the weight bound β) at laptop scale, prints the regenerated series and
asserts the qualitative shape reported by the paper.
"""

from __future__ import annotations

from repro.evaluation.tables import format_table, render_figure
from repro.experiments.heavy_hitters_experiments import (
    figure1_sweep_epsilon,
    figure1e_error_vs_messages,
    figure1f_messages_vs_beta,
)


def _epsilon_sweep(hh_config):
    return figure1_sweep_epsilon(hh_config)


class TestFigure1EpsilonSweep:
    def test_fig1a_recall_vs_eps(self, benchmark, hh_config, run_once):
        result = run_once(benchmark, _epsilon_sweep, hh_config)
        print()
        print(render_figure(result, "recall", "Figure 1(a): recall vs epsilon"))
        # Paper: recall is 1.0 for every protocol at every epsilon.
        for protocol, series in result.series("recall").items():
            assert all(value >= 0.999 for value in series), protocol

    def test_fig1b_precision_vs_eps(self, benchmark, hh_config, run_once):
        result = run_once(benchmark, _epsilon_sweep, hh_config)
        print()
        print(render_figure(result, "precision", "Figure 1(b): precision vs epsilon"))
        precision = result.series("precision")
        for protocol, series in precision.items():
            # Paper: precision 1.0 for epsilon <= 0.01, may dip for larger
            # epsilon because of the phi - eps/2 report rule.
            for epsilon, value in zip(result.values(), series):
                if epsilon <= 0.01:
                    assert value >= 0.99, (protocol, epsilon, value)
                else:
                    assert value >= 0.5, (protocol, epsilon, value)

    def test_fig1c_err_vs_eps(self, benchmark, hh_config, run_once):
        result = run_once(benchmark, _epsilon_sweep, hh_config)
        print()
        print(render_figure(result, "err", "Figure 1(c): avg error of true HH vs epsilon"))
        errors = result.series("err")
        for protocol in ("P1", "P2", "P3"):
            series = errors[protocol]
            # Paper: measured error stays well below the guarantee eps/phi.
            for epsilon, value in zip(result.values(), series):
                assert value <= epsilon / hh_config.phi, (protocol, epsilon, value)
        # P1 is (near-)exact at small epsilon on skewed data.
        assert errors["P1"][0] <= 1e-3

    def test_fig1d_msg_vs_eps(self, benchmark, hh_config, run_once):
        result = run_once(benchmark, _epsilon_sweep, hh_config)
        print()
        print(render_figure(result, "msg", "Figure 1(d): messages vs epsilon"))
        messages = result.series("msg")
        # Paper: message counts drop by orders of magnitude as epsilon grows,
        # and P2 is cheaper than P1 at the same epsilon.
        for protocol in ("P1", "P2", "P3", "P4"):
            assert messages[protocol][-1] < messages[protocol][0]
        for index in range(len(result.values())):
            assert messages["P2"][index] <= messages["P1"][index]
        # At the largest epsilon every protocol beats forwarding the stream.
        for protocol in ("P2", "P3", "P4"):
            assert messages[protocol][-1] < hh_config.num_items


class TestFigure1Tradeoff:
    def test_fig1e_err_vs_msg(self, benchmark, hh_config, run_once):
        rows = run_once(benchmark, figure1e_error_vs_messages, hh_config)
        print()
        print(format_table(rows, title="Figure 1(e): error vs messages trade-off"))
        # Within each protocol, spending more messages (smaller epsilon) never
        # hurts the measured error by much: the cheapest configuration should
        # not be the most accurate one.
        by_protocol = {}
        for row in rows:
            by_protocol.setdefault(row["protocol"], []).append(row)
        for protocol, entries in by_protocol.items():
            entries.sort(key=lambda entry: entry["msg"])
            assert entries[-1]["err"] <= entries[0]["err"] + 0.05, protocol


class TestFigure1Beta:
    def test_fig1f_msg_vs_beta(self, benchmark, hh_config, run_once):
        result = run_once(benchmark, figure1f_messages_vs_beta, hh_config)
        print()
        print(render_figure(result, "msg", "Figure 1(f): messages vs beta"))
        messages = result.series("msg")
        # Paper: all protocols are robust to the weight upper bound beta —
        # message counts change by well under an order of magnitude across
        # four orders of magnitude of beta.
        for protocol, series in messages.items():
            low, high = min(series), max(series)
            assert high <= 10 * max(1, low), (protocol, series)
        # Accuracy is maintained at every beta.
        for protocol, series in result.series("recall").items():
            assert all(value >= 0.999 for value in series), protocol
