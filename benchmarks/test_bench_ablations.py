"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's figures and quantify the knobs a user of the
library actually turns:

* the Frequent Directions sketch size ℓ (accuracy vs space),
* the priority-sampling sample size s (accuracy vs communication),
* coordinator-side sketch compression for protocol P2 (space vs accuracy),
* per-site space bounding for heavy-hitters P2 via SpaceSaving.
"""

from __future__ import annotations

from repro.evaluation.tables import format_table
from repro.experiments.matrix_experiments import feed_dataset, load_experiment_dataset
from repro.heavy_hitters import ThresholdedUpdatesProtocol
from repro.matrix_tracking import (
    CentralizedFDBaseline,
    DeterministicDirectionProtocol,
    MatrixPrioritySamplingProtocol,
)
from repro.data import ZipfianStreamGenerator


def _fd_sketch_size_ablation(config):
    dataset = load_experiment_dataset(config, "msd")
    rows = []
    for sketch_size in (10, 20, 40, 80):
        protocol = CentralizedFDBaseline(num_sites=config.num_sites,
                                         dimension=dataset.dimension,
                                         sketch_size=sketch_size)
        feed_dataset(protocol, dataset.rows)
        rows.append({
            "sketch_size": sketch_size,
            "err": protocol.approximation_error(),
            "bound": 2.0 / sketch_size,
        })
    return rows


def _sample_size_ablation(config):
    dataset = load_experiment_dataset(config, "pamap")
    rows = []
    for sample_size in (50, 200, 800):
        protocol = MatrixPrioritySamplingProtocol(
            num_sites=config.num_sites, dimension=dataset.dimension,
            epsilon=config.epsilon, sample_size=sample_size, seed=config.seed)
        feed_dataset(protocol, dataset.rows)
        rows.append({
            "sample_size": sample_size,
            "err": protocol.approximation_error(),
            "msg": protocol.total_messages,
        })
    return rows


def _coordinator_compression_ablation(config):
    dataset = load_experiment_dataset(config, "pamap")
    rows = []
    for sketch_size in (None, 200, 50):
        protocol = DeterministicDirectionProtocol(
            num_sites=config.num_sites, dimension=dataset.dimension,
            epsilon=config.epsilon, coordinator_sketch_size=sketch_size)
        feed_dataset(protocol, dataset.rows)
        rows.append({
            "coordinator_sketch": sketch_size if sketch_size else "exact",
            "err": protocol.approximation_error(),
            "coordinator_rows": protocol.sketch_matrix().shape[0],
            "msg": protocol.total_messages,
        })
    return rows


def _site_space_ablation(hh_config):
    generator = ZipfianStreamGenerator(universe_size=hh_config.universe_size,
                                       skew=hh_config.skew, beta=hh_config.beta,
                                       seed=hh_config.seed)
    sample = generator.generate(hh_config.num_items)
    rows = []
    for site_space in (None, 2000, 200):
        protocol = ThresholdedUpdatesProtocol(num_sites=hh_config.num_sites,
                                              epsilon=0.01, site_space=site_space)
        for index, (element, weight) in enumerate(sample.items):
            protocol.process(index % hh_config.num_sites, element, weight)
        heaviest = max(sample.element_weights, key=sample.element_weights.get)
        truth = sample.element_weights[heaviest]
        rows.append({
            "site_space": site_space if site_space else "exact",
            "top_element_rel_err": abs(protocol.estimate(heaviest) - truth) / truth,
            "msg": protocol.total_messages,
        })
    return rows


class TestAblations:
    def test_fd_sketch_size(self, benchmark, matrix_config, run_once):
        rows = run_once(benchmark, _fd_sketch_size_ablation, matrix_config)
        print()
        print(format_table(rows, title="Ablation: FD sketch size (MSD-like)"))
        # Error decreases monotonically with the sketch size and respects the
        # 2/l worst-case bound.
        errors = [row["err"] for row in rows]
        assert errors == sorted(errors, reverse=True)
        for row in rows:
            assert row["err"] <= row["bound"] + 1e-9

    def test_sampling_sample_size(self, benchmark, matrix_config, run_once):
        rows = run_once(benchmark, _sample_size_ablation, matrix_config)
        print()
        print(format_table(rows, title="Ablation: P3 sample size (PAMAP-like)"))
        # Larger samples cost more messages and (weakly) reduce error.
        messages = [row["msg"] for row in rows]
        assert messages == sorted(messages)
        assert rows[-1]["err"] <= rows[0]["err"] + 0.05

    def test_coordinator_compression(self, benchmark, matrix_config, run_once):
        rows = run_once(benchmark, _coordinator_compression_ablation, matrix_config)
        print()
        print(format_table(rows,
                           title="Ablation: coordinator compression for P2 (PAMAP-like)"))
        exact, medium, small = rows
        # Compression caps the coordinator's memory ...
        assert medium["coordinator_rows"] <= 200
        assert small["coordinator_rows"] <= 50
        # ... at a bounded accuracy cost.
        assert medium["err"] <= exact["err"] + 2.0 / 200 + 1e-9
        assert small["err"] <= exact["err"] + 2.0 / 50 + 1e-9

    def test_site_space_bounding(self, benchmark, hh_config, run_once):
        rows = run_once(benchmark, _site_space_ablation, hh_config)
        print()
        print(format_table(rows, title="Ablation: per-site SpaceSaving for HH P2"))
        # Bounding per-site space leaves the heaviest element's estimate
        # essentially unchanged on a skewed stream.
        for row in rows:
            assert row["top_element_rel_err"] <= 0.05
