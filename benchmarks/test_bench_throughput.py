"""Ingestion throughput: the batched engine versus per-item dispatch.

The tentpole claim of the batched ingestion engine is a ≥10× items/sec win
on the paper's Zipfian heavy-hitters workload.  This harness measures both
dispatch paths over identical streams, prints the items/sec table (so the
perf trajectory lands in CI logs), and asserts the win.

The hard 10× assertion runs on the heavy-hitter workload at a stream length
where flush costs are amortised (the paper's streams are 10^7 items; we use
10^6 by default, scaled by ``REPRO_BENCH_SCALE``).  The matrix workload is
SVD-compaction-bound in both paths, so it only asserts a >1.5× win.

The sharded scaling benchmark measures the ``repro.cluster`` process
backend's multi-core curve (items/sec versus shard count).  Its hard
``≥1.5× at 4 shards`` assertion needs 4 idle cores, so it is skipped on
smaller hosts — the single-machine answer-correctness smoke always runs.
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation.tables import format_table
from repro.evaluation.throughput import (
    measure_heavy_hitter_throughput,
    measure_matrix_throughput,
    measure_sharded_throughput,
    sharded_report_rows,
)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


class TestBatchedIngestionThroughput:
    def test_heavy_hitters_zipfian_10x(self, benchmark, bench_scale, run_once):
        result = run_once(
            benchmark, measure_heavy_hitter_throughput,
            num_items=int(1_000_000 * bench_scale), repeats=3,
        )
        print()
        print(format_table([result.as_dict()],
                           title="Heavy hitters ingestion throughput"))
        assert result.batched_rate > 0
        # The acceptance bar for the batched engine: one order of magnitude.
        assert result.speedup >= 10.0, (
            f"batched path is only {result.speedup:.1f}x the per-item path "
            f"({result.batched_rate:,.0f} vs {result.per_item_rate:,.0f} items/s)"
        )

    def test_heavy_hitters_p2_threshold_3x(self, benchmark, bench_scale, run_once):
        """P2's trigger-split kernel: ≥3x on the same Zipfian workload."""
        result = run_once(
            benchmark, measure_heavy_hitter_throughput,
            num_items=int(1_000_000 * bench_scale), protocol="P2", repeats=3,
        )
        print()
        print(format_table([result.as_dict()],
                           title="Heavy hitters P2 ingestion throughput"))
        assert result.speedup >= 3.0, (
            f"P2 batched path is only {result.speedup:.1f}x the per-item path "
            f"({result.batched_rate:,.0f} vs {result.per_item_rate:,.0f} items/s)"
        )

    def test_heavy_hitters_p3_sampling_3x(self, benchmark, bench_scale, run_once):
        """P3's block-draw kernel: ≥3x on the same Zipfian workload."""
        result = run_once(
            benchmark, measure_heavy_hitter_throughput,
            num_items=int(1_000_000 * bench_scale), protocol="P3", repeats=3,
        )
        print()
        print(format_table([result.as_dict()],
                           title="Heavy hitters P3 ingestion throughput"))
        assert result.speedup >= 3.0, (
            f"P3 batched path is only {result.speedup:.1f}x the per-item path "
            f"({result.batched_rate:,.0f} vs {result.per_item_rate:,.0f} items/s)"
        )

    def test_matrix_rows_faster_batched(self, benchmark, bench_scale, run_once):
        result = run_once(
            benchmark, measure_matrix_throughput,
            num_rows=int(100_000 * bench_scale), repeats=2,
        )
        print()
        print(format_table([result.as_dict()],
                           title="Matrix-row ingestion throughput"))
        # Both paths share the FD compaction SVDs, which bound the win.
        assert result.speedup >= 1.5, (
            f"batched path is only {result.speedup:.1f}x the per-item path"
        )


class TestShardedScaling:
    def test_process_backend_scaling_curve(self, benchmark, bench_scale,
                                           run_once):
        """Items/sec versus shard count under the process backend.

        The curve always prints (the perf trajectory belongs in CI logs);
        the hard ``≥1.5×`` acceptance at 4 shards only applies when 4 cores
        are actually available to the worker processes.
        """
        cpus = _usable_cpus()
        shard_counts = (1, 2, 4) if cpus >= 4 else (1, 2)
        results = run_once(
            benchmark, measure_sharded_throughput,
            num_items=int(1_000_000 * bench_scale),
            shard_counts=shard_counts, backend="process", repeats=2,
        )
        rows = sharded_report_rows(results)
        print()
        print(format_table(rows, title=f"Sharded scaling ({cpus} cpus)"))
        assert all(result.rate > 0 for result in results)
        if cpus < 4:
            pytest.skip(f"scaling assertion needs >=4 cores, host has {cpus}")
        by_shards = {result.shards: result.rate for result in results}
        speedup = by_shards[4] / by_shards[1]
        assert speedup >= 1.5, (
            f"4 process-backend shards give only {speedup:.2f}x the 1-shard "
            f"rate ({by_shards[4]:,.0f} vs {by_shards[1]:,.0f} items/s)"
        )


class TestWireTransportOverhead:
    def test_wire_codec_vs_pickle_dispatch(self, benchmark, bench_scale,
                                           run_once):
        """Codec overhead on process-backend shard dispatch.

        The wire codec replaced pickle on the worker pipes; this measures
        both transports over the identical 2-shard workload and prints the
        ratio.  There is no hard floor on single-core hosts (the workload
        is then pure dispatch overhead, the codec's worst case); with real
        cores the ingestion work dominates and the soft 0.5× sanity bound
        applies.
        """
        num_items = max(50_000, int(500_000 * bench_scale))

        def both_transports():
            return {
                transport: measure_sharded_throughput(
                    num_items=num_items, shard_counts=(2,),
                    backend="process",
                    backend_options={"transport": transport}, repeats=2,
                )[0].rate
                for transport in ("wire", "pickle")
            }

        results = run_once(benchmark, both_transports)
        ratio = results["wire"] / results["pickle"]
        print()
        print(format_table(
            [{"transport": name, "items_per_sec": round(rate)}
             for name, rate in results.items()],
            title=f"Shard dispatch transport (wire/pickle = {ratio:.2f}x)"))
        assert results["wire"] > 0 and results["pickle"] > 0
        if _usable_cpus() >= 2:
            assert ratio >= 0.5, (
                f"wire transport is {ratio:.2f}x pickle — codec overhead "
                "out of hand"
            )
